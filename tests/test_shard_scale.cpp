// Fat-tree scale coverage for the sharded simulator: the DCP_SHARDS
// identity matrix on k=8/k=16 smoke workloads, the fault-plan serial
// fallback, the fat-tree-in-pool oracle fuzz batch, and the k=16
// route-cache thrash regression.  Suite names start with ShardScale so
// CI's TSan job picks them up (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/invariant_oracle.h"
#include "harness/checkpoint.h"
#include "harness/scheme.h"
#include "sim/shard.h"
#include "stats/core_perf.h"
#include "topo/fattree.h"
#include "topo/network.h"
#include "workload/flowgen.h"

namespace dcp {
namespace {

/// FNV-1a over every flow's completion record plus the event count — the
/// same digest bench_scale gates on.
struct RunDigest {
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t events = 0;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  bool operator==(const RunDigest&) const = default;
};

struct FatTreeRunConfig {
  int k = 8;
  int shards = 1;
  std::size_t num_flows = 48;
  Time max_time = milliseconds(2);
  std::uint32_t route_cache_slots = 0;  // 0 = derived from topology
  bool oracle = false;
  // kDcp runs adaptive LB; the route-pick cache only arms under ECMP, so
  // cache-behavior tests switch to the ECMP-routed IRN scheme.
  SchemeKind scheme = SchemeKind::kDcp;
};

RunDigest run_fattree(const FatTreeRunConfig& c, std::uint64_t* cache_misses = nullptr) {
  ShardGroup group(c.shards);
  Logger log(LogLevel::kOff);
  Network net(group, log);

  SchemeSetup s = make_scheme(c.scheme, SchemeOptions{});
  s.sw.inject_loss_rate = 0.005;
  FatTreeParams fp;
  fp.k = c.k;
  fp.sw = s.sw;
  fp.route_cache_slots = c.route_cache_slots;
  FatTreeTopology topo = build_fattree(net, fp);
  apply_scheme(net, s);

  FlowGenParams fg;
  fg.load = 0.4;
  fg.num_flows = c.num_flows;
  fg.seed = 11;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);

  std::unique_ptr<InvariantOracle> ora;
  if (c.oracle) ora = std::make_unique<InvariantOracle>(net);
  net.run_until_done(c.max_time);
  if (ora) {
    ora->finalize();
    EXPECT_TRUE(ora->ok()) << ora->summary();
  }

  RunDigest d;
  for (const FlowRecord& rec : net.records()) {
    d.mix(static_cast<std::uint64_t>(rec.tx_done));
    d.mix(static_cast<std::uint64_t>(rec.rx_done));
    d.mix(rec.sender.data_packets_sent);
    d.mix(rec.sender.retransmitted_packets);
    d.mix(rec.sender.timeouts);
    d.mix(rec.receiver.bytes_received);
    d.mix(rec.receiver.out_of_order_packets);
  }
  d.events = group.events_processed();
  if (cache_misses != nullptr) {
    *cache_misses = 0;
    for (const auto& sw : net.switches()) *cache_misses += sw->route_cache().misses();
  }
  return d;
}

// ---------------------------------------------------------------------------
// Digest + events identity matrix
// ---------------------------------------------------------------------------

TEST(ShardScaleDigest, FatTreeK8IdentityAcrossShardCounts) {
  FatTreeRunConfig c;
  c.k = 8;  // 128 hosts, 8 pods: 2 and 8 shards both cut at agg<->core
  const RunDigest serial = run_fattree(c);
  EXPECT_GT(serial.events, 0u);
  for (int shards : {2, 8}) {
    FatTreeRunConfig cs = c;
    cs.shards = shards;
    const RunDigest d = run_fattree(cs);
    EXPECT_EQ(d, serial) << "DCP_SHARDS=" << shards << " diverged from serial";
  }
}

TEST(ShardScaleDigest, FatTreeK16SmokeIdentityAcrossShardCounts) {
  // 1024 hosts — construction dominates, so the workload is tiny; the
  // point is the partitioning at real scale, not throughput.
  FatTreeRunConfig c;
  c.k = 16;
  c.num_flows = 24;
  c.max_time = microseconds(500);
  const RunDigest serial = run_fattree(c);
  EXPECT_GT(serial.events, 0u);
  for (int shards : {2, 8}) {
    FatTreeRunConfig cs = c;
    cs.shards = shards;
    const RunDigest d = run_fattree(cs);
    EXPECT_EQ(d, serial) << "DCP_SHARDS=" << shards << " diverged from serial";
  }
}

TEST(ShardScaleDigest, OracleArmedShardedFatTreeStaysClean) {
  FatTreeRunConfig c;
  c.k = 8;
  c.shards = 8;
  c.num_flows = 32;
  c.oracle = true;
  const RunDigest d = run_fattree(c);
  EXPECT_GT(d.events, 0u);
}

// ---------------------------------------------------------------------------
// Fault plans force the serial fallback
// ---------------------------------------------------------------------------

/// Scoped DCP_SHARDS override (the fuzz runner reads the variable when it
/// builds its world).
class ScopedShardsEnv {
 public:
  explicit ScopedShardsEnv(int shards) {
    const char* prev = std::getenv("DCP_SHARDS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("DCP_SHARDS", std::to_string(shards).c_str(), 1);
  }
  ~ScopedShardsEnv() {
    if (had_prev_) {
      setenv("DCP_SHARDS", prev_.c_str(), 1);
    } else {
      unsetenv("DCP_SHARDS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

FuzzScenario fattree_fault_scenario() {
  FuzzScenario s;
  s.scheme = SchemeKind::kDcp;
  s.fattree_k = 4;  // 16 hosts
  s.max_time = milliseconds(10);
  for (int i = 0; i < 4; ++i) {
    FuzzFlow f;
    f.src = i;
    f.dst = 8 + i;  // cross-pod: the flow traverses the agg<->core cut
    f.bytes = 96 * 1024;
    f.start = microseconds(5.0 * i);
    s.flows.push_back(f);
  }
  FaultAction a;
  a.kind = FaultKind::kLinkFlap;
  a.at = microseconds(40);
  a.duration = microseconds(100);
  a.sw = 0;
  a.port = FaultAction::kAll;
  s.faults.actions.push_back(a);
  return s;
}

TEST(ShardScaleFallback, FaultPlanRunsSerialRegardlessOfShardsEnv) {
  // The injector has no shard ordering story, so a fault plan must force
  // the serial path: DCP_SHARDS=8 and an explicit serial run have to be
  // bit-identical, and the world's group must really be size 1.
  const FuzzScenario s = fattree_fault_scenario();
  WorldDigest serial, sharded_env;
  {
    ScopedShardsEnv env(1);
    SimWorld w(fuzz_world_spec(s, {}));
    w.run_until_done();
    serial = w.digest();
    EXPECT_EQ(w.shard_count(), 1);
  }
  {
    ScopedShardsEnv env(8);
    SimWorld w(fuzz_world_spec(s, {}));
    w.run_until_done();
    sharded_env = w.digest();
    EXPECT_EQ(w.shard_count(), 1) << "fault plan did not force serial fallback";
  }
  EXPECT_EQ(serial, sharded_env);
}

TEST(ShardScaleFallback, FaultFreeFatTreeScenarioHonoursShardsEnv) {
  FuzzScenario s = fattree_fault_scenario();
  s.faults.actions.clear();
  WorldDigest serial, sharded;
  {
    ScopedShardsEnv env(1);
    SimWorld w(fuzz_world_spec(s, {}));
    w.run_until_done();
    serial = w.digest();
  }
  {
    ScopedShardsEnv env(4);
    SimWorld w(fuzz_world_spec(s, {}));
    w.run_until_done();
    sharded = w.digest();
    EXPECT_EQ(w.shard_count(), 4);  // clamp is the pod count
  }
  EXPECT_EQ(serial, sharded);
}

// ---------------------------------------------------------------------------
// Oracle fuzz batch with fat-tree in the scenario pool
// ---------------------------------------------------------------------------

TEST(ShardScaleFuzz, HundredSeedOracleBatchWithFatTreePool) {
  // Every odd seed re-pools the generated scenario onto a k=4 fat-tree
  // (the CLOS host-index range is a subset of the fat-tree's, so flows
  // stay valid).  Under DCP_SHARDS=8, fault-free scenarios run sharded
  // (clamped to the partition-unit count) and fault plans fall back to
  // serial — the oracle must stay clean either way.
  ScopedShardsEnv env(8);
  int fattree_runs = 0, sharded_eligible = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    FuzzScenario s = generate_fuzz_scenario(seed);
    if (seed % 2 == 1) {
      s.fattree_k = 4;
      ++fattree_runs;
    }
    if (!s.faults.has_effect()) ++sharded_eligible;
    const FuzzVerdict v = run_fuzz_scenario(s, {});
    EXPECT_FALSE(v.violated) << "seed " << seed << " (fattree_k=" << s.fattree_k
                             << "): " << v.message << "\n"
                             << v.trace;
  }
  EXPECT_EQ(fattree_runs, 50);
  EXPECT_GT(sharded_eligible, 0);
}

TEST(ShardScaleFuzz, FatTreeScenarioReproRoundTrips) {
  FuzzScenario s = fattree_fault_scenario();
  const std::string text = write_fuzz_repro(s, FuzzVerdict{});
  std::string err;
  const auto parsed = parse_fuzz_scenario(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, s);
  EXPECT_EQ(parsed->num_hosts(), 16);
}

// ---------------------------------------------------------------------------
// Route-cache sizing at scale
// ---------------------------------------------------------------------------

TEST(ShardScaleRouteCache, K16DerivedCapacityStopsThrash) {
  // Derived sizing at k=16: 4 x 1024 hosts = 4096 slots.  Against the
  // historical fixed 512 slots the same workload must (a) produce the
  // bit-identical digest — sizing is output-invisible — and (b) miss
  // less: with hundreds of concurrent (flow, hop) picks per switch, 512
  // direct-mapped slots evict live entries continuously.
  FatTreeRunConfig derived;
  derived.k = 16;
  derived.num_flows = 48;
  derived.max_time = milliseconds(1);
  derived.scheme = SchemeKind::kIrnEcmp;  // ECMP: the only LB that arms the cache
  FatTreeRunConfig fixed = derived;
  fixed.route_cache_slots = 512;

  std::uint64_t misses_derived = 0, misses_fixed = 0;
  const RunDigest d1 = run_fattree(derived, &misses_derived);
  const RunDigest d2 = run_fattree(fixed, &misses_fixed);
  EXPECT_EQ(d1, d2) << "route-cache capacity leaked into simulation results";
  EXPECT_LT(misses_derived, misses_fixed)
      << "derived capacity (" << misses_derived << " misses) should beat 512 slots ("
      << misses_fixed << " misses)";
}

TEST(ShardScaleRouteCache, DerivedCapacityMatchesTopology) {
  ShardGroup group(1);
  Logger log(LogLevel::kOff);
  Network net(group, log);
  FatTreeParams fp;
  fp.k = 8;  // 128 hosts -> 4x = 512 exactly at the clamp floor
  build_fattree(net, fp);
  for (const auto& sw : net.switches()) {
    EXPECT_EQ(sw->route_cache().capacity(), 512u);
  }

  ShardGroup group2(1);
  Network net2(group2, log);
  FatTreeParams fp2;
  fp2.k = 16;  // 1024 hosts -> 4096 slots
  build_fattree(net2, fp2);
  for (const auto& sw : net2.switches()) {
    EXPECT_EQ(sw->route_cache().capacity(), 4096u);
  }
}

}  // namespace
}  // namespace dcp
