// Unit tests for the discrete-event engine: time math, event ordering,
// cancellation, and RNG determinism.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace dcp {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1000 * microseconds(1));
  EXPECT_EQ(seconds(1), 1000 * milliseconds(1));
  EXPECT_DOUBLE_EQ(to_us(microseconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(7)), 7.0);
}

TEST(Bandwidth, SerializationExactFor100G) {
  const Bandwidth b = Bandwidth::gbps(100);
  EXPECT_EQ(b.ps_per_byte, 80);
  EXPECT_EQ(b.serialize(1000), 80'000);  // 1 KB at 100G = 80 ns
  EXPECT_DOUBLE_EQ(b.as_gbps(), 100.0);
}

TEST(Bandwidth, SerializationExactFor400G) {
  const Bandwidth b = Bandwidth::gbps(400);
  EXPECT_EQ(b.ps_per_byte, 20);
}

TEST(EventQueue, FifoForSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  q.push(100, [&] { order.push_back(1); });
  q.push(100, [&] { order.push_back(2); });
  q.push(50, [&] { order.push_back(0); });
  Time now = 0;
  while (q.pop_and_run(now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(now, 100);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.push(10, [&] { fired += 1; });
  q.push(20, [&] { fired += 10; });
  q.cancel(a);
  Time now = 0;
  while (q.pop_and_run(now)) {
  }
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(kInvalidEvent);
  q.cancel(12345);  // never scheduled
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelIsHarmless) {
  // Regression: with raw counter ids, cancelling twice could kill an
  // unrelated event that had reused the id's slot.  Generation-stamped
  // handles make the second cancel a provable no-op.
  EventQueue q;
  int fired = 0;
  const EventId a = q.push(10, [&] { fired += 1; });
  q.push(20, [&] { fired += 10; });
  q.cancel(a);
  q.cancel(a);  // stale: generation already bumped
  // New event reuses a's slot; the stale handle must not be able to touch it.
  q.push(30, [&] { fired += 100; });
  q.cancel(a);
  Time now = 0;
  while (q.pop_and_run(now)) {
  }
  EXPECT_EQ(fired, 110);
}

TEST(EventQueue, CancelAfterFireWithSlotReuse) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.push(10, [&] { fired += 1; });
  Time now = 0;
  ASSERT_TRUE(q.pop_and_run(now));  // a fires; its slot is recycled
  const EventId b = q.push(20, [&] { fired += 10; });  // reuses the slot
  EXPECT_NE(a, b);                                     // generation differs
  q.cancel(a);                                         // must not cancel b
  while (q.pop_and_run(now)) {
  }
  EXPECT_EQ(fired, 11);
}

TEST(EventQueue, CancelOwnIdInsideCallbackIsHarmless) {
  EventQueue q;
  int fired = 0;
  EventId self = kInvalidEvent;
  self = q.push(10, [&] {
    fired++;
    q.cancel(self);  // already fired: stale, no-op
  });
  q.push(20, [&] { fired += 10; });
  Time now = 0;
  while (q.pop_and_run(now)) {
  }
  EXPECT_EQ(fired, 11);
}

TEST(EventQueue, SlabStopsGrowingUnderChurn) {
  // Steady-state schedule/cancel/fire churn must recycle slots, not grow
  // the slab: capacity plateaus at the high-water mark (one 512 chunk).
  EventQueue q;
  Time now = 0;
  std::int64_t t = 0;
  for (int i = 0; i < 256; ++i) q.push(++t, [] {});
  const std::size_t plateau = q.slots_allocated();
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = q.push(++t, [] {});
    if (i % 3 == 0) {
      q.cancel(id);
    } else {
      q.pop_and_run(now);
    }
  }
  EXPECT_EQ(q.slots_allocated(), plateau);
}

TEST(EventCallback, MoveOnlyCaptureAndHeapFallbackCounting) {
  // Small captures stay inline; captures beyond kInlineSize take the
  // (counted) heap path.  Move-only captures work in either case, which
  // std::function could not express.
  auto small_ptr = std::make_unique<int>(7);
  EventCallback small([p = std::move(small_ptr)] { (*p)++; });
  const std::uint64_t before = EventCallback::heap_fallback_count();
  struct Big {
    char bytes[96];
  };
  EventCallback big([b = Big{}] { (void)b; });
  EXPECT_EQ(EventCallback::heap_fallback_count(), before + 1);
  small();
  big();
  EventCallback moved = std::move(small);
  moved();
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 2);
}

TEST(Simulator, RunAdvancesTimeMonotonically) {
  Simulator sim;
  std::vector<Time> stamps;
  sim.schedule(microseconds(5), [&] { stamps.push_back(sim.now()); });
  sim.schedule(microseconds(1), [&] {
    stamps.push_back(sim.now());
    sim.schedule(microseconds(1), [&] { stamps.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], microseconds(1));
  EXPECT_EQ(stamps[1], microseconds(2));
  EXPECT_EQ(stamps[2], microseconds(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(microseconds(10), [&] { fired++; });
  sim.run(microseconds(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), microseconds(5));
  sim.run(microseconds(20));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&] {
    fired++;
    sim.stop();
  });
  sim.schedule(2, [&] { fired++; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtInPastClampsToNow) {
  Simulator sim;
  sim.schedule(microseconds(3), [] {});
  sim.run();
  Time fired_at = -1;
  sim.schedule_at(microseconds(1), [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, microseconds(3));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / n, 42.0, 1.5);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, Mix64SpreadsBits) {
  // Consecutive inputs should land in different buckets most of the time.
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (mix64(i) % 16 == mix64(i + 1) % 16) ++same;
  }
  EXPECT_LT(same, 200);
}

// ---------------------------------------------------------------------------
// Stress / property tests for the event engine
// ---------------------------------------------------------------------------

TEST(EventQueueStress, RandomizedOrderingProperty) {
  // 100k events with random times must fire in non-decreasing time order,
  // FIFO within equal timestamps.
  EventQueue q;
  Rng rng(11);
  struct Fired {
    Time t;
    std::uint64_t seq;
  };
  std::vector<Fired> fired;
  fired.reserve(100'000);
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    const Time t = rng.uniform_int(0, 1000);  // heavy collisions on purpose
    q.push(t, [&fired, t, i] { fired.push_back({t, i}); });
  }
  Time now = 0;
  while (q.pop_and_run(now)) {
  }
  ASSERT_EQ(fired.size(), 100'000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i].t, fired[i - 1].t);
    if (fired[i].t == fired[i - 1].t) {
      ASSERT_GT(fired[i].seq, fired[i - 1].seq);  // FIFO among equals
    }
  }
}

TEST(EventQueueStress, InterleavedCancellations) {
  EventQueue q;
  Rng rng(13);
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(q.push(rng.uniform_int(0, 5000), [&fired] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    q.cancel(ids[i]);
    ++cancelled;
  }
  Time now = 0;
  while (q.pop_and_run(now)) {
  }
  EXPECT_EQ(fired, 10'000 - cancelled);
}

TEST(SimulatorStress, NestedSchedulingKeepsOrder) {
  Simulator sim;
  std::vector<int> order;
  // Each event schedules a child at +1; children of earlier events must
  // still respect global time ordering.
  for (int i = 0; i < 100; ++i) {
    sim.schedule(i * 10, [&sim, &order, i] {
      order.push_back(i * 2);
      sim.schedule(1, [&order, i] { order.push_back(i * 2 + 1); });
    });
  }
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(2 * i)], 2 * i);
    EXPECT_EQ(order[static_cast<std::size_t>(2 * i + 1)], 2 * i + 1);
  }
}

TEST(BandwidthProperty, SerializationLinearityAcrossRates) {
  for (double g : {10.0, 25.0, 40.0, 100.0, 200.0, 400.0}) {
    const Bandwidth b = Bandwidth::gbps(g);
    EXPECT_EQ(b.serialize(2000), 2 * b.serialize(1000)) << g;
    EXPECT_EQ(b.serialize(0), 0) << g;
    EXPECT_NEAR(b.as_gbps(), g, g * 0.05) << g;  // integer ps/byte rounding
  }
}

}  // namespace
}  // namespace dcp
