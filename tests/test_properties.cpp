// Parameterized property suites over randomized adverse conditions:
//
//  P1  Reliability: for every scheme, under random loss rates and fan-in,
//      every flow completes and delivers exactly its byte count.
//  P2  Lossless control plane: with the WRR weight from the paper's
//      formula, no HO packet is lost for incast scales up to N-1.
//  P3  DCP exactly-once: absent timeouts, the receiver never counts a
//      duplicate; with timeouts, completion still fires exactly once.

#include <gtest/gtest.h>

#include <tuple>

#include "check/invariant_oracle.h"
#include "core/dcp_transport.h"
#include "harness/scheme.h"
#include "switch/scheduler.h"
#include "topo/clos.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

// ---------------------------------------------------------------------------
// P1: reliability sweep — (scheme, loss%, seed)
// ---------------------------------------------------------------------------

using ReliabilityParam = std::tuple<SchemeKind, int, int>;  // scheme, loss_pct10, seed

class ReliabilitySweep : public ::testing::TestWithParam<ReliabilityParam> {};

TEST_P(ReliabilitySweep, EveryByteDeliveredEveryFlowCompletes) {
  const auto [kind, loss_pct10, seed] = GetParam();
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(kind);
  s.sw.inject_loss_rate = loss_pct10 / 1000.0;
  Star star = build_star(net, 5, s.sw);
  apply_scheme(net, s);

  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<FlowId> ids;
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < 6; ++i) {
    FlowSpec spec;
    const std::size_t a = rng.pick_index(5);
    std::size_t b = rng.pick_index(5);
    if (b == a) b = (a + 1) % 5;
    spec.src = star.hosts[a]->id();
    spec.dst = star.hosts[b]->id();
    spec.bytes = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 300'000));
    spec.msg_bytes = 64 * 1024;
    spec.start_time = static_cast<Time>(rng.uniform_int(0, microseconds(50)));
    ids.push_back(net.start_flow(spec));
    sizes.push_back(spec.bytes);
  }
  net.run_until_done(seconds(10));

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const FlowRecord& rec = net.record(ids[i]);
    ASSERT_TRUE(rec.complete()) << scheme_name(kind) << " loss=" << loss_pct10 / 10.0 << "%";
    EXPECT_EQ(rec.receiver.bytes_received, sizes[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesUnderLoss, ReliabilitySweep,
    ::testing::Combine(::testing::Values(SchemeKind::kDcp, SchemeKind::kCx5, SchemeKind::kIrn,
                                         SchemeKind::kTimeout, SchemeKind::kRackTlp),
                       ::testing::Values(0, 5, 20, 50),  // 0%, 0.5%, 2%, 5%
                       ::testing::Values(1, 2)));

// ---------------------------------------------------------------------------
// P2: lossless control plane under incast
// ---------------------------------------------------------------------------

class LosslessCpSweep : public ::testing::TestWithParam<int> {};  // fan-in

TEST_P(LosslessCpSweep, NoHoLossUpToFormulaScale) {
  const int fan_in = GetParam();
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  // Paper §4.2: w = (N-1)/(r-N+1), r = data/HO size ratio.
  const double r = 1073.0 / 57.0;  // ~18.8
  s.sw.control_weight = wrr_control_weight(fan_in + 1, r, /*fallback=*/4.0);
  // Shallow threshold to force trimming even at small fan-in (this suite
  // stresses the control plane, like Table 5).
  s.sw.trim_threshold_bytes = 64 * 1024;
  Star star = build_star(net, fan_in + 1, s.sw);
  apply_scheme(net, s);

  for (int i = 0; i < fan_in; ++i) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = star.hosts[static_cast<std::size_t>(fan_in)]->id();
    spec.bytes = 200'000;
    spec.msg_bytes = 64 * 1024;
    net.start_flow(spec);
  }
  net.run_until_done(seconds(10));

  const auto sw = net.total_switch_stats();
  EXPECT_TRUE(net.all_flows_done());
  EXPECT_GT(sw.trimmed, 0u);       // the incast really overflowed the queue
  EXPECT_EQ(sw.dropped_ho, 0u);    // and the control plane stayed lossless
}

INSTANTIATE_TEST_SUITE_P(FanIn, LosslessCpSweep, ::testing::Values(2, 4, 8, 12, 16));

// ---------------------------------------------------------------------------
// P3: DCP exactly-once counting
// ---------------------------------------------------------------------------

class DcpExactlyOnce : public ::testing::TestWithParam<int> {};  // loss pct*10

TEST_P(DcpExactlyOnce, NoDuplicateCountsWithoutTimeouts) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.inject_loss_rate = GetParam() / 1000.0;  // trims, never silently drops
  Star star = build_star(net, 3, s.sw);
  apply_scheme(net, s);

  FlowSpec spec;
  spec.src = star.hosts[0]->id();
  spec.dst = star.hosts[2]->id();
  spec.bytes = 400'000;
  spec.msg_bytes = 50'000;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(10));

  const FlowRecord& rec = net.record(id);
  ASSERT_TRUE(rec.complete());
  if (rec.sender.timeouts == 0) {
    // Trimming guarantees exactly-once arrival: the receiver never sees the
    // same packet twice, so the counter never rejects one.
    EXPECT_EQ(rec.receiver.duplicate_packets, 0u);
  }
  EXPECT_EQ(rec.receiver.bytes_received, 400'000u);
}

INSTANTIATE_TEST_SUITE_P(LossLevels, DcpExactlyOnce, ::testing::Values(0, 10, 30, 100));

// ---------------------------------------------------------------------------
// P4: WRR weight formula behaves across the r/N plane
// ---------------------------------------------------------------------------

TEST(WrrFormula, MonotonicInIncastScale) {
  const double r = 18.8;
  double prev = 0.0;
  for (int n = 2; n < 18; ++n) {
    const double w = wrr_control_weight(n, r, 100.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

// ---------------------------------------------------------------------------
// P5: DWRR byte-share property across weights — when both classes are
// permanently backlogged with equal packet sizes, the served byte ratio
// converges to the configured weight ratio.
// ---------------------------------------------------------------------------

class DwrrShareSweep : public ::testing::TestWithParam<int> {};  // weight*100

TEST_P(DwrrShareSweep, ServedRatioTracksWeights) {
  const double w = GetParam() / 100.0;
  DwrrPolicy policy({1.0, w});
  std::vector<FifoQueue> queues(kNumQueueClasses);
  Packet p;
  p.wire_bytes = 1000;
  auto refill = [&] {
    while (queues[0].packets() < 4) queues[0].push(p);
    while (queues[1].packets() < 4) queues[1].push(p);
  };
  std::array<bool, kNumQueueClasses> paused{};
  std::array<std::uint64_t, 2> served{};
  for (int i = 0; i < 20000; ++i) {
    refill();
    const int c = policy.select(queues, paused);
    ASSERT_GE(c, 0);
    queues[static_cast<std::size_t>(c)].pop();
    policy.charge(c, 1000);
    served[static_cast<std::size_t>(c)] += 1000;
  }
  const double ratio = static_cast<double>(served[1]) / static_cast<double>(served[0]);
  EXPECT_NEAR(ratio, w, w * 0.1 + 0.02) << "weight " << w;
}

INSTANTIATE_TEST_SUITE_P(Weights, DwrrShareSweep,
                         ::testing::Values(25, 50, 100, 200, 400, 800, 1600));

// ---------------------------------------------------------------------------
// P6: PFC safety — with derived thresholds, no packet is ever dropped for
// any incast fan-in (the lossless fabric property GBN/MP-RDMA rely on).
// ---------------------------------------------------------------------------

class PfcSafetySweep : public ::testing::TestWithParam<int> {};  // fan-in

TEST_P(PfcSafetySweep, NeverDropsUnderIncast) {
  const int fan_in = GetParam();
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kPfc);
  // Tight explicit thresholds so per-ingress Xoff lands below a sender's
  // steady-state queue share and PAUSE frames actually fire; the buffer
  // still covers Xoff + headroom for every port (the safety condition).
  s.sw.buffer_bytes = static_cast<std::uint64_t>(fan_in + 1) * 120 * 1024;
  s.sw.pfc.enabled = true;
  s.sw.pfc.xoff_bytes = 64 * 1024;
  s.sw.pfc.xon_bytes = 56 * 1024;
  Star star = build_star(net, fan_in + 1, s.sw);
  apply_scheme(net, s);

  for (int i = 0; i < fan_in; ++i) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = star.hosts[static_cast<std::size_t>(fan_in)]->id();
    spec.bytes = 1'000'000;
    net.start_flow(spec);
  }
  net.run_until_done(seconds(10));

  EXPECT_TRUE(net.all_flows_done());
  const auto sw = net.total_switch_stats();
  EXPECT_EQ(sw.dropped_data, 0u);
  EXPECT_EQ(sw.dropped_buffer_full, 0u);
  EXPECT_EQ(sw.lossless_violations, 0u);
  if (fan_in >= 4) {
    EXPECT_GT(sw.pauses_sent, 0u);  // PFC actually engaged
  }
}

INSTANTIATE_TEST_SUITE_P(FanIns, PfcSafetySweep, ::testing::Values(2, 4, 8, 12));

// ---------------------------------------------------------------------------
// P7: chaos — random topology size, random scheme, random flows, random
// loss; everything must complete with exact byte counts.
// ---------------------------------------------------------------------------

class Chaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chaos, RandomizedFabricDeliversEverything) {
  Rng rng(GetParam());
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kIrn, SchemeKind::kCx5,
                              SchemeKind::kTimeout, SchemeKind::kRackTlp, SchemeKind::kPfc,
                              SchemeKind::kMpRdma};
  const SchemeKind kind = kinds[rng.pick_index(7)];

  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(kind);
  const bool lossless = s.sw.pfc.enabled;
  if (!lossless && rng.chance(0.5)) {
    s.sw.inject_loss_rate = rng.uniform(0.0, 0.03);
  }

  ClosParams cp;
  cp.spines = 1 + static_cast<int>(rng.uniform_int(1, 4));
  cp.leaves = 2;
  cp.hosts_per_leaf = 1 + static_cast<int>(rng.uniform_int(1, 3));
  cp.sw = s.sw;
  ClosTopology topo = build_clos(net, cp);
  apply_scheme(net, s);

  const int flows = 4 + static_cast<int>(rng.uniform_int(0, 8));
  std::vector<FlowId> ids;
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < flows; ++i) {
    FlowSpec spec;
    const std::size_t a = rng.pick_index(topo.hosts.size());
    std::size_t b = rng.pick_index(topo.hosts.size());
    if (b == a) b = (a + 1) % topo.hosts.size();
    spec.src = topo.hosts[a]->id();
    spec.dst = topo.hosts[b]->id();
    spec.bytes = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 400'000));
    spec.msg_bytes = 64 * 1024;
    spec.start_time = static_cast<Time>(rng.uniform_int(0, microseconds(100)));
    ids.push_back(net.start_flow(spec));
    sizes.push_back(spec.bytes);
  }
  net.run_until_done(seconds(20));

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const FlowRecord& rec = net.record(ids[i]);
    ASSERT_TRUE(rec.complete()) << scheme_name(kind) << " seed " << GetParam();
    EXPECT_EQ(rec.receiver.bytes_received, sizes[i]) << scheme_name(kind);
  }
  if (lossless) {
    EXPECT_EQ(net.total_switch_stats().lossless_violations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos, ::testing::Range<std::uint64_t>(100, 140));

// ---------------------------------------------------------------------------
// Oracle-armed P1–P3: the same adverse conditions, but with the
// InvariantOracle attached so a run fails on the *first* violated protocol
// invariant (with its event trace) instead of only on end-state asserts.
// Compact parameter sets: the unarmed sweeps above cover breadth.
// ---------------------------------------------------------------------------

#define ASSERT_ORACLE_OK(oracle) \
  ASSERT_TRUE((oracle).ok()) << (oracle).summary() << "\n" << (oracle).trace_slice()

using OracleReliabilityParam = std::tuple<SchemeKind, int>;  // scheme, loss_pct10

class OracleReliabilitySweep : public ::testing::TestWithParam<OracleReliabilityParam> {};

TEST_P(OracleReliabilitySweep, InvariantsHoldUnderLoss) {
  const auto [kind, loss_pct10] = GetParam();
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(kind);
  s.sw.inject_loss_rate = loss_pct10 / 1000.0;
  Star star = build_star(net, 5, s.sw);
  apply_scheme(net, s);

  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    FlowSpec spec;
    const std::size_t a = rng.pick_index(5);
    std::size_t b = rng.pick_index(5);
    if (b == a) b = (a + 1) % 5;
    spec.src = star.hosts[a]->id();
    spec.dst = star.hosts[b]->id();
    spec.bytes = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 300'000));
    spec.msg_bytes = 64 * 1024;
    spec.start_time = static_cast<Time>(rng.uniform_int(0, microseconds(50)));
    net.start_flow(spec);
  }
  InvariantOracle oracle(net);
  net.run_until_done(seconds(10));
  oracle.finalize();
  ASSERT_ORACLE_OK(oracle);
  EXPECT_TRUE(net.all_flows_done());
}

INSTANTIATE_TEST_SUITE_P(SchemesUnderLoss, OracleReliabilitySweep,
                         ::testing::Combine(::testing::Values(SchemeKind::kDcp, SchemeKind::kCx5,
                                                              SchemeKind::kIrn,
                                                              SchemeKind::kRackTlp),
                                            ::testing::Values(0, 20)));

class OracleLosslessCpSweep : public ::testing::TestWithParam<int> {};  // fan-in

TEST_P(OracleLosslessCpSweep, InvariantsHoldUnderIncastTrimming) {
  const int fan_in = GetParam();
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  const double r = 1073.0 / 57.0;
  s.sw.control_weight = wrr_control_weight(fan_in + 1, r, /*fallback=*/4.0);
  s.sw.trim_threshold_bytes = 64 * 1024;
  Star star = build_star(net, fan_in + 1, s.sw);
  apply_scheme(net, s);

  for (int i = 0; i < fan_in; ++i) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = star.hosts[static_cast<std::size_t>(fan_in)]->id();
    spec.bytes = 200'000;
    spec.msg_bytes = 64 * 1024;
    net.start_flow(spec);
  }
  InvariantOracle oracle(net);
  net.run_until_done(seconds(10));
  oracle.finalize();
  ASSERT_ORACLE_OK(oracle);
  EXPECT_TRUE(net.all_flows_done());
  EXPECT_GT(net.total_switch_stats().trimmed, 0u);  // HO ledger actually exercised
}

INSTANTIATE_TEST_SUITE_P(FanIn, OracleLosslessCpSweep, ::testing::Values(4, 12));

class OracleDcpExactlyOnce : public ::testing::TestWithParam<int> {};  // loss pct*10

TEST_P(OracleDcpExactlyOnce, InvariantsHoldAcrossTimeoutRounds) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.inject_loss_rate = GetParam() / 1000.0;
  Star star = build_star(net, 3, s.sw);
  apply_scheme(net, s);

  FlowSpec spec;
  spec.src = star.hosts[0]->id();
  spec.dst = star.hosts[2]->id();
  spec.bytes = 400'000;
  spec.msg_bytes = 50'000;
  const FlowId id = net.start_flow(spec);
  InvariantOracle oracle(net);
  net.run_until_done(seconds(10));
  oracle.finalize();
  ASSERT_ORACLE_OK(oracle);
  ASSERT_TRUE(net.record(id).complete());
  EXPECT_EQ(net.record(id).receiver.bytes_received, 400'000u);
}

INSTANTIATE_TEST_SUITE_P(LossLevels, OracleDcpExactlyOnce, ::testing::Values(0, 30, 100));

}  // namespace
}  // namespace dcp
