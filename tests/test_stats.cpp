// Unit tests for percentile estimation, FCT bucketing and goodput math.

#include <gtest/gtest.h>

#include "stats/fct_stats.h"
#include "stats/goodput.h"
#include "stats/percentile.h"

namespace dcp {
namespace {

TEST(Percentile, ExactOnKnownData) {
  PercentileEstimator p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
  EXPECT_NEAR(p.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(p.percentile(95), 95.05, 0.1);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(Percentile, EmptyReturnsZero) {
  PercentileEstimator p;
  EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
  EXPECT_TRUE(p.empty());
}

TEST(Percentile, InterleavedAddAndQuery) {
  PercentileEstimator p;
  p.add(10);
  EXPECT_DOUBLE_EQ(p.percentile(50), 10.0);
  p.add(20);
  p.add(30);
  EXPECT_DOUBLE_EQ(p.percentile(100), 30.0);
}

TEST(SizeClasses, PaperBoundaries) {
  EXPECT_EQ(size_class_of(10'000), SizeClass::kSmall);
  EXPECT_EQ(size_class_of(50 * 1024), SizeClass::kSmall);
  EXPECT_EQ(size_class_of(100'000), SizeClass::kMedium);
  EXPECT_EQ(size_class_of(2 * 1024 * 1024), SizeClass::kMedium);
  EXPECT_EQ(size_class_of(5'000'000), SizeClass::kLarge);
}

FlowRecord fake_record(std::uint64_t bytes, Time fct) {
  FlowRecord r;
  r.spec.bytes = bytes;
  r.spec.start_time = 0;
  r.rx_done = fct;
  r.tx_done = fct;
  return r;
}

TEST(FctStats, SlowdownClampedAtOne) {
  FctStats s({1000, 1'000'000});
  s.add(fake_record(500, microseconds(1)), microseconds(2));  // faster than ideal
  EXPECT_DOUBLE_EQ(s.overall().percentile(50), 1.0);
}

TEST(FctStats, BucketsBySize) {
  FctStats s({1000, 1'000'000});
  s.add(fake_record(500, microseconds(4)), microseconds(2));        // bucket 0, slowdown 2
  s.add(fake_record(500'000, microseconds(30)), microseconds(10));  // bucket 1, slowdown 3
  s.add(fake_record(5'000'000, microseconds(40)), microseconds(10));  // catch-all, slowdown 4
  const auto p50 = s.per_bucket_percentile(50);
  ASSERT_EQ(p50.size(), 3u);
  EXPECT_DOUBLE_EQ(p50[0], 2.0);
  EXPECT_DOUBLE_EQ(p50[1], 3.0);
  EXPECT_DOUBLE_EQ(p50[2], 4.0);
  EXPECT_EQ(s.flows(), 3u);
}

TEST(FctStats, IncompleteFlowsIgnored) {
  FctStats s({1000});
  FlowRecord r = fake_record(500, microseconds(4));
  r.tx_done = -1;
  s.add(r, microseconds(1));
  EXPECT_EQ(s.flows(), 0u);
}

TEST(FctStats, DefaultEdgesMatchPaperAxis) {
  const auto e = FctStats::default_edges();
  EXPECT_EQ(e.front(), 3'000u);
  EXPECT_EQ(e.back(), 29'995'000u);
  EXPECT_EQ(e.size(), 20u);
}

TEST(Goodput, ComputesFromRecord) {
  FlowRecord r = fake_record(12'500'000, milliseconds(1));  // 12.5 MB in 1 ms = 100 Gb/s
  EXPECT_NEAR(flow_goodput_gbps(r), 100.0, 0.01);
  EXPECT_NEAR(flow_rx_goodput_gbps(r), 100.0, 0.01);
}

TEST(Goodput, ZeroForIncomplete) {
  FlowRecord r = fake_record(1000, milliseconds(1));
  r.tx_done = -1;
  EXPECT_DOUBLE_EQ(flow_goodput_gbps(r), 0.0);
}

}  // namespace
}  // namespace dcp
