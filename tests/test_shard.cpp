// Space-parallel sharding mechanics: the ShardGroup window/barrier
// coordinator, the shared setup sequence counter, provisional-sequence
// commitment and the cross-shard channel mailbox.  End-to-end digest
// equality against the serial path lives in test_shard_digest.cpp; this
// file pins down the moving parts in isolation.

#include <gtest/gtest.h>

#include <vector>

#include "net/channel.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace dcp {
namespace {

class SinkNode final : public Node {
 public:
  SinkNode(Simulator& sim, Logger& log, NodeId id = 0) : Node(sim, log, id, "sink") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t in_port) override {
    arrivals.push_back({sim_.now(), std::move(*pkt), in_port});
  }
  struct Arrival {
    Time t;
    Packet pkt;
    std::uint32_t port;
  };
  std::vector<Arrival> arrivals;
};

Packet data_packet(std::uint32_t bytes, std::uint32_t psn = 0) {
  Packet p;
  p.type = PktType::kData;
  p.wire_bytes = bytes;
  p.payload_bytes = bytes;
  p.psn = psn;
  return p;
}

// ---------------------------------------------------------------------------
// Group basics
// ---------------------------------------------------------------------------

TEST(ShardGroup, SizeOneIsThePlainSerialPath) {
  ShardGroup g(1);
  EXPECT_EQ(g.size(), 1);
  EXPECT_FALSE(g.sharded());
  EXPECT_TRUE(g.idle());

  std::vector<Time> fired;
  g.sim(0).schedule_at(microseconds(3), [&] { fired.push_back(g.sim(0).now()); });
  g.sim(0).schedule_at(microseconds(1), [&] { fired.push_back(g.sim(0).now()); });
  // run_window on an unsharded group is just Simulator::run(bound).
  g.run_window(microseconds(10));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], microseconds(1));
  EXPECT_EQ(fired[1], microseconds(3));
  EXPECT_EQ(g.events_processed(), 2u);
}

TEST(ShardGroup, SetupSequencesComeFromOneSharedCounter) {
  // Before any window runs, both shards must allocate from the same stream
  // so topology construction is bit-identical to a serial build.
  ShardGroup g(2);
  const std::uint64_t a = g.sim(0).alloc_event_seq();
  const std::uint64_t b = g.sim(1).alloc_event_seq();
  const std::uint64_t c = g.sim(0).alloc_event_seq();
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
}

TEST(ShardGroup, WindowBoundIsInclusiveAndStrict) {
  ShardGroup g(2);
  g.set_lookahead(microseconds(1));
  std::vector<int> fired0, fired1;
  g.sim(0).schedule_at(microseconds(2), [&] { fired0.push_back(2); });
  g.sim(0).schedule_at(microseconds(7), [&] { fired0.push_back(7); });
  g.sim(1).schedule_at(microseconds(2), [&] { fired1.push_back(2); });
  g.sim(1).schedule_at(microseconds(5), [&] { fired1.push_back(5); });

  EXPECT_EQ(g.next_time(), microseconds(2));
  g.run_window(microseconds(5));  // inclusive: the t=5 event runs
  EXPECT_EQ(fired0, (std::vector<int>{2}));
  EXPECT_EQ(fired1, (std::vector<int>{2, 5}));
  EXPECT_EQ(g.next_time(), microseconds(7));

  g.run_window(microseconds(7));
  EXPECT_EQ(fired0, (std::vector<int>{2, 7}));
  EXPECT_TRUE(g.idle());
  EXPECT_EQ(g.events_processed(), 4u);
  EXPECT_EQ(g.max_now(), microseconds(7));
}

TEST(ShardGroup, EventsScheduledInsideAWindowRunInsideIt) {
  // A window event scheduling a follow-up still inside the bound must see
  // it fire in the same window (the queue keeps running to the bound).
  ShardGroup g(2);
  g.set_lookahead(microseconds(1));
  std::vector<Time> fired;
  g.sim(0).schedule_at(microseconds(1), [&] {
    g.sim(0).schedule_at(microseconds(2), [&] { fired.push_back(g.sim(0).now()); });
  });
  g.run_window(microseconds(3));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], microseconds(2));
}

// ---------------------------------------------------------------------------
// Cross-shard mailbox
// ---------------------------------------------------------------------------

struct CrossFixture {
  ShardGroup g{2};
  Logger log{LogLevel::kOff};
  SinkNode sink{g.sim(1), log};
  Channel ch{g.sim(0), Bandwidth::gbps(100), microseconds(1)};

  CrossFixture() {
    g.set_lookahead(microseconds(1));
    ch.connect(&sink, 4);
    ch.enable_shard_mode(&g.sim(1));
    g.add_cross_drain(0, [this](const SeqRemap& remap) { return ch.drain_cross(remap); });
  }
};

TEST(ShardCross, DeliversAcrossTheCutAtTheExactSerialInstant) {
  CrossFixture f;
  const Time ser = f.ch.serialization(1000);
  for (int i = 0; i < 3; ++i) {
    f.g.sim(0).schedule_at(i * ser, [&f, i, ser] {
      f.ch.deliver(data_packet(1000, static_cast<std::uint32_t>(i)), ser);
    });
  }
  // Window 1 covers the sends; arrivals land strictly later (t + 1us).
  f.g.run_window(2 * ser);
  EXPECT_TRUE(f.sink.arrivals.empty());
  EXPECT_EQ(f.ch.cross_pending(), 3u);

  f.g.run_window(3 * ser + microseconds(1));
  ASSERT_EQ(f.sink.arrivals.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.sink.arrivals[static_cast<std::size_t>(i)].pkt.psn,
              static_cast<std::uint32_t>(i));
    EXPECT_EQ(f.sink.arrivals[static_cast<std::size_t>(i)].t, (i + 1) * ser + microseconds(1));
    EXPECT_EQ(f.sink.arrivals[static_cast<std::size_t>(i)].port, 4u);
  }
  EXPECT_EQ(f.ch.cross_pending(), 0u);
  EXPECT_EQ(f.ch.delivered_packets(), 3u);
}

TEST(ShardCross, SameInstantArrivalsKeepIssueOrder) {
  CrossFixture f;
  f.g.sim(0).schedule_at(0, [&f] {
    for (int i = 0; i < 4; ++i) {
      f.ch.deliver(data_packet(64, static_cast<std::uint32_t>(i)), 0);
    }
  });
  f.g.run_window(0);
  f.g.run_window(microseconds(1));
  ASSERT_EQ(f.sink.arrivals.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(f.sink.arrivals[static_cast<std::size_t>(i)].pkt.psn,
              static_cast<std::uint32_t>(i));
    EXPECT_EQ(f.sink.arrivals[static_cast<std::size_t>(i)].t, microseconds(1));
  }
  // One event per delivery on the destination shard — the same charge the
  // serial lane/plain paths make.
  EXPECT_EQ(f.g.sim(1).events_processed(), 4u);
}

TEST(ShardCross, ArrivalsCountOneEventEachOnTheDestinationShard) {
  CrossFixture f;
  const Time ser = f.ch.serialization(1000);
  f.g.sim(0).schedule_at(0, [&f, ser] { f.ch.deliver(data_packet(1000), ser); });
  f.g.run_window(0);
  const std::uint64_t src_events = f.g.sim(0).events_processed();
  f.g.run_window(ser + microseconds(1));
  EXPECT_EQ(f.g.sim(0).events_processed(), src_events);  // nothing ran at the source
  EXPECT_EQ(f.g.sim(1).events_processed(), 1u);
}

TEST(ShardCross, DropInFlightCutKillsMailboxPackets) {
  CrossFixture f;
  f.ch.set_drop_in_flight_on_cut(true);
  f.g.sim(0).schedule_at(0, [&f] { f.ch.deliver(data_packet(256), 0); });
  // The cut happens after the send but before the arrival fires.
  f.g.sim(0).schedule_at(0, [&f] { f.ch.set_up(false); });
  f.g.run_window(0);
  f.g.run_window(microseconds(1));
  EXPECT_TRUE(f.sink.arrivals.empty());
  EXPECT_EQ(f.ch.in_flight_dropped(), 1u);
}

TEST(ShardCross, MaxNowTracksTheLastExecutedEvent) {
  CrossFixture f;
  const Time ser = f.ch.serialization(500);
  f.g.sim(0).schedule_at(0, [&f, ser] { f.ch.deliver(data_packet(500), ser); });
  f.g.run_window(0);
  f.g.run_window(ser + microseconds(1));
  EXPECT_TRUE(f.g.idle());
  // The arrival on shard 1 is the globally last event.
  EXPECT_EQ(f.g.max_now(), ser + microseconds(1));
}

}  // namespace
}  // namespace dcp
