// Load-balancing policy tests: spraying uniformity, flowlet stickiness and
// gap-triggered re-picks, and policy behaviour through the switch.

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "switch/routing.h"
#include "topo/clos.h"
#include "topo/testbed.h"

namespace dcp {
namespace {

std::vector<std::uint32_t> four_ports() { return {0, 1, 2, 3}; }

TEST(SelectPort, SprayIsRoughlyUniform) {
  Rng rng(7);
  Packet p;
  std::array<int, 4> hits{};
  auto depth = [](std::uint32_t) { return 0ull; };
  for (int i = 0; i < 4000; ++i) {
    hits[select_port(LbPolicy::kSpray, p, four_ports(), depth, rng)]++;
  }
  for (int h : hits) EXPECT_NEAR(h, 1000, 150);
}

TEST(SelectPort, SourcePathHonoursPathId) {
  Rng rng(7);
  Packet p;
  auto depth = [](std::uint32_t) { return 0ull; };
  for (std::uint32_t vp = 0; vp < 8; ++vp) {
    p.path_id = vp;
    EXPECT_EQ(select_port(LbPolicy::kSourcePath, p, four_ports(), depth, rng), vp % 4);
  }
}

TEST(SelectPort, AdaptivePrefersShallowQueue) {
  Rng rng(7);
  Packet p;
  auto depth = [](std::uint32_t port) { return port == 2 ? 0ull : 100'000ull; };
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(select_port(LbPolicy::kAdaptive, p, four_ports(), depth, rng), 2u);
  }
}

TEST(FlowletTableTest, SticksWithinGapRepicksAfter) {
  FlowletTable t(microseconds(50));
  EXPECT_FALSE(t.lookup(1, 0).has_value());  // unknown flow
  t.update(1, 3, 0);
  // Within the gap: sticky.
  auto hit = t.lookup(1, microseconds(10));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 3u);
  // lookup refreshes last_seen, so a chain of closely spaced packets keeps
  // the flowlet alive...
  EXPECT_TRUE(t.lookup(1, microseconds(40)).has_value());
  EXPECT_TRUE(t.lookup(1, microseconds(80)).has_value());
  // ...but a real gap expires it.
  EXPECT_FALSE(t.lookup(1, microseconds(200)).has_value());
}

TEST(FlowletSelect, BurstStaysOnOnePort) {
  Rng rng(7);
  FlowletTable table(microseconds(50));
  Packet p;
  p.flow = 42;
  auto depth = [&rng](std::uint32_t) { return static_cast<std::uint64_t>(0); };
  const std::uint32_t first =
      select_port(LbPolicy::kFlowlet, p, four_ports(), depth, rng, 0, &table);
  for (int i = 1; i <= 30; ++i) {
    const Time now = i * microseconds(1);
    EXPECT_EQ(select_port(LbPolicy::kFlowlet, p, four_ports(), depth, rng, now, &table), first);
  }
}

TEST(FlowletSelect, GapAllowsPathChangeTowardShorterQueue) {
  Rng rng(7);
  FlowletTable table(microseconds(50));
  Packet p;
  p.flow = 42;
  std::uint64_t depths[4] = {0, 0, 0, 0};
  auto depth = [&depths](std::uint32_t port) { return depths[port]; };
  const std::uint32_t first =
      select_port(LbPolicy::kFlowlet, p, four_ports(), depth, rng, 0, &table);
  // Congest the chosen port, wait out the flowlet gap, and re-pick.
  depths[first] = 1'000'000;
  const std::uint32_t second =
      select_port(LbPolicy::kFlowlet, p, four_ports(), depth, rng, milliseconds(1), &table);
  EXPECT_NE(second, first);
}

TEST(SwitchLbPolicy, SpraySpreadsOneFlowAcrossCrossLinks) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.lb = LbPolicy::kSpray;
  TestbedParams tb;
  tb.sw = s.sw;
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, s);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = 4'000'000;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(2));
  ASSERT_TRUE(net.record(id).complete());
  int used = 0;
  for (std::uint32_t pi = 8; pi < topo.sw1->num_ports(); ++pi) {
    if (topo.sw1->port(pi).stats().tx_packets > 100) ++used;
  }
  EXPECT_GE(used, 6);  // one flow over nearly all 8 links
}

TEST(SwitchLbPolicy, FlowletKeepsAFlowMostlyOnOnePath) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.lb = LbPolicy::kFlowlet;
  s.sw.flowlet_gap = microseconds(100);
  TestbedParams tb;
  tb.sw = s.sw;
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, s);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = 4'000'000;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(2));
  ASSERT_TRUE(net.record(id).complete());
  // A continuously backlogged flow has no flowlet gaps: one cross link
  // should carry (nearly) all of it.
  std::uint64_t max_pkts = 0, total = 0;
  for (std::uint32_t pi = 8; pi < topo.sw1->num_ports(); ++pi) {
    max_pkts = std::max(max_pkts, topo.sw1->port(pi).stats().tx_packets);
    total += topo.sw1->port(pi).stats().tx_packets;
  }
  EXPECT_GT(max_pkts, total * 9 / 10);
}

TEST(SwitchLbPolicy, DcpDeliversExactBytesUnderEveryPolicy) {
  for (LbPolicy lb : {LbPolicy::kEcmp, LbPolicy::kAdaptive, LbPolicy::kSpray,
                      LbPolicy::kFlowlet, LbPolicy::kSourcePath}) {
    Simulator sim;
    Logger log{LogLevel::kOff};
    Network net{sim, log};
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    s.sw.lb = lb;
    ClosParams cp;
    cp.spines = 4;
    cp.leaves = 2;
    cp.hosts_per_leaf = 2;
    cp.sw = s.sw;
    ClosTopology topo = build_clos(net, cp);
    apply_scheme(net, s);
    FlowSpec spec;
    spec.src = topo.hosts[0]->id();
    spec.dst = topo.hosts[3]->id();
    spec.bytes = 1'000'000;
    const FlowId id = net.start_flow(spec);
    net.run_until_done(seconds(2));
    ASSERT_TRUE(net.record(id).complete()) << static_cast<int>(lb);
    EXPECT_EQ(net.record(id).receiver.bytes_received, 1'000'000u);
    EXPECT_EQ(net.record(id).sender.retransmitted_packets, 0u);  // R2: no spurious
  }
}

}  // namespace
}  // namespace dcp
