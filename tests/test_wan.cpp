// WAN topology: mesh wiring and path metadata, cross-region flows over
// clean and lossy long-haul links, the huge-BDP overflow probe, and shard
// determinism — a WAN run (lossy or not) must be bit-identical across
// DCP_SHARDS because each wire's loss draws come from its own substream.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "topo/wan.h"

namespace dcp {
namespace {

struct TopoFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
};

class ScopedShardsEnv {
 public:
  explicit ScopedShardsEnv(int shards) {
    const char* prev = std::getenv("DCP_SHARDS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("DCP_SHARDS", std::to_string(shards).c_str(), 1);
  }
  ~ScopedShardsEnv() {
    if (had_prev_) {
      setenv("DCP_SHARDS", prev_.c_str(), 1);
    } else {
      unsetenv("DCP_SHARDS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(Wan, MeshDimensionsAndRoutes) {
  TopoFixture f;
  WanParams p;
  p.regions = 4;
  p.hosts_per_region = 3;
  WanTopology t = build_wan(f.net, p);
  EXPECT_EQ(t.hosts.size(), 12u);
  EXPECT_EQ(t.region_sw.size(), 4u);
  EXPECT_EQ(t.region_of_host(0), 0);
  EXPECT_EQ(t.region_of_host(5), 1);
  EXPECT_EQ(t.region_of_host(11), 3);
  // Clean wires: no fault state is allocated at all.
  EXPECT_TRUE(t.wire_faults.empty());
  EXPECT_EQ(t.wire_dropped(), 0u);

  // Each region switch reaches a remote host through exactly one direct
  // mesh wire (single-path WAN: no cross-region ECMP spraying).
  const NodeId remote = t.hosts[11]->id();
  EXPECT_EQ(t.region_sw[0]->routes().candidates(remote).size(), 1u);
  EXPECT_EQ(t.region_sw[0]->routes().candidates(t.hosts[0]->id()).size(), 1u);
}

TEST(Wan, PathInfoReflectsTheLongHaul) {
  TopoFixture f;
  WanParams p;
  p.regions = 2;
  p.hosts_per_region = 2;
  p.wan_delay = milliseconds(25);
  WanTopology t = build_wan(f.net, p);
  const auto same = f.net.path_info(t.hosts[0]->id(), t.hosts[1]->id());
  const auto cross = f.net.path_info(t.hosts[0]->id(), t.hosts[2]->id());
  EXPECT_EQ(same.hops, 2);
  EXPECT_EQ(cross.hops, 3);
  EXPECT_GE(cross.one_way_delay, milliseconds(25));
  EXPECT_LT(same.one_way_delay, microseconds(10));
}

TEST(Wan, LossyWiresAllocatePerDirectionFaults) {
  TopoFixture f;
  WanParams p;
  p.regions = 3;
  p.wan_loss_rate = 0.05;
  WanTopology t = build_wan(f.net, p);
  // 3 region pairs x 2 directions.
  EXPECT_EQ(t.wire_faults.size(), 6u);
  for (const auto& wf : t.wire_faults) {
    EXPECT_EQ(wf->fault.drop_rate, 0.05);
    EXPECT_EQ(wf->fault.rng, &wf->rng);
  }
}

TEST(Wan, CrossRegionFlowCompletesClean) {
  WanFlowParams p;
  p.scheme = SchemeKind::kDcp;
  p.wan.wan_delay = milliseconds(5);
  p.wan.hosts_per_region = 2;
  p.flow_bytes = 2ull * 1000 * 1000;
  p.max_time = seconds(2);
  p.oracle = true;
  const WanFlowResult r = run_wan_flow(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.receiver.bytes_received, p.flow_bytes);
  EXPECT_EQ(r.wire_dropped, 0u);
  for (const InvariantViolation& v : r.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(Wan, LossyCrossRegionFlowCompletesAndCountsDrops) {
  WanFlowParams p;
  p.scheme = SchemeKind::kFec;
  p.wan.wan_delay = milliseconds(5);
  p.wan.hosts_per_region = 2;
  p.wan.wan_loss_rate = 0.05;
  p.flow_bytes = 2ull * 1000 * 1000;
  p.max_time = seconds(5);
  p.oracle = true;
  const WanFlowResult r = run_wan_flow(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.receiver.bytes_received, p.flow_bytes);
  EXPECT_GT(r.wire_dropped, 0u);
  EXPECT_GT(r.receiver.decode_recovered_packets, 0u);
  for (const InvariantViolation& v : r.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(Wan, HugeBdpProbeNoOverflow) {
  // The unit landmine this topology exists to flush out: 400 ms one-way at
  // 100 Gbps is a ~5 GB BDP and an ~800 ms RTT — timer arithmetic, window
  // accounting and buffer sizing all have to survive in 64-bit.  The flow
  // is small; what matters is that timers fire sanely and the run
  // completes with exact byte accounting instead of wedging or wrapping.
  WanFlowParams p;
  p.scheme = SchemeKind::kFec;
  p.wan.regions = 2;
  p.wan.hosts_per_region = 2;
  p.wan.wan_delay = milliseconds(400);
  p.flow_bytes = 1ull * 1000 * 1000;
  p.max_time = seconds(10);
  p.oracle = true;
  const WanFlowResult r = run_wan_flow(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.receiver.bytes_received, p.flow_bytes);
  EXPECT_GT(r.elapsed, milliseconds(800));  // at least one RTT, sane sign
  EXPECT_LT(r.elapsed, seconds(10));
  for (const InvariantViolation& v : r.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

// ---------------------------------------------------------------------------
// Shard determinism
// ---------------------------------------------------------------------------

struct TrialDigest {
  double goodput = 0.0;
  Time elapsed = 0;
  bool completed = false;
  std::uint64_t retransmitted = 0;
  std::uint64_t decoded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t events = 0;

  bool operator==(const TrialDigest&) const = default;
};

std::vector<TrialDigest> wan_matrix(int shards) {
  ScopedShardsEnv env(shards);
  const SchemeKind kinds[] = {SchemeKind::kFec, SchemeKind::kDcp};
  const double losses[] = {0.0, 0.02};
  std::vector<TrialDigest> out;
  for (double loss : losses) {
    for (SchemeKind k : kinds) {
      WanFlowParams p;
      p.scheme = k;
      p.wan.wan_delay = milliseconds(2);
      p.wan.hosts_per_region = 2;
      p.wan.wan_loss_rate = loss;
      p.flow_bytes = 1ull * 1000 * 1000;
      p.max_time = seconds(2);
      const WanFlowResult r = run_wan_flow(p);
      TrialDigest d;
      d.goodput = r.goodput_gbps;
      d.elapsed = r.elapsed;
      d.completed = r.completed;
      d.retransmitted = r.sender.retransmitted_packets;
      d.decoded = r.receiver.decode_recovered_packets;
      d.dropped = r.wire_dropped;
      d.events = r.core.events_processed;
      out.push_back(d);
    }
  }
  return out;
}

TEST(WanShardDigest, ShardedBitIdenticalToSerial) {
  // Lossy cells included: per-wire fault substreams are drawn only on the
  // source shard's thread, so even random WAN loss must not diverge.
  const std::vector<TrialDigest> serial = wan_matrix(1);
  const std::vector<TrialDigest> sharded = wan_matrix(2);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], sharded[i]) << "trial " << i;
  }
  bool any_drop = false;
  for (const TrialDigest& d : sharded) any_drop = any_drop || d.dropped > 0;
  EXPECT_TRUE(any_drop);
}

}  // namespace
}  // namespace dcp
