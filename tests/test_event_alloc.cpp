// Proves the acceptance criterion behind the event-core rewrite: the
// steady-state schedule -> fire path performs ZERO per-event heap
// allocations.  A counting global operator new is installed for this
// binary only (which is why this file is its own test executable and must
// not be merged into another).
//
// Method: warm each structure past its high-water mark first (slabs,
// heap vector, freelists all reach capacity), snapshot the allocation
// counter, churn, and assert the counter did not move.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/channel.h"
#include "net/node.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n) == 0) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace dcp {
namespace {

TEST(EventAlloc, SteadyStateScheduleFireIsAllocationFree) {
  Simulator sim;
  // Warm-up: push the queue past the working depth so the slab and heap
  // vector reach their high-water marks, then drain.
  for (int i = 0; i < 2048; ++i) sim.schedule(i + 1, [] {});
  sim.run();

  std::uint64_t fired = 0;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule(i + 1, [&fired] { ++fired; });
    }
    sim.run();
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(fired, 64'000u);
}

TEST(EventAlloc, ScheduleCancelChurnIsAllocationFree) {
  Simulator sim;
  for (int i = 0; i < 2048; ++i) sim.schedule(i + 1, [] {});
  sim.run();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 10'000; ++round) {
    const EventId a = sim.schedule(5, [] {});
    sim.schedule(6, [] {});
    sim.cancel(a);
    sim.cancel(a);  // stale double-cancel rides along for free
    sim.run();
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

/// Echoes every packet straight back out over its own channel.
class PingPongNode final : public Node {
 public:
  PingPongNode(Simulator& sim, Logger& log, NodeId id) : Node(sim, log, id, "pingpong") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t) override {
    ++bounces;
    if (out != nullptr && bounces < limit) {
      out->deliver(std::move(pkt), 0);
    }
    // else: handle dies here, slot goes back to the pool
  }
  Channel* out = nullptr;
  std::uint64_t bounces = 0;
  std::uint64_t limit = 0;
};

TEST(EventAlloc, PooledPacketPingPongIsAllocationFree) {
  Simulator sim;
  Logger log(LogLevel::kOff);
  PingPongNode a(sim, log, 0), b(sim, log, 1);
  Channel ab(sim, Bandwidth::gbps(100), microseconds(1));
  Channel ba(sim, Bandwidth::gbps(100), microseconds(1));
  ab.connect(&b, 0);
  ba.connect(&a, 0);
  a.out = &ab;
  b.out = &ba;

  // Warm-up bounce: materializes pool slabs, event slab, channel closures.
  a.limit = b.limit = 100;
  ab.deliver(PacketPtr::make(), 0);
  sim.run();

  a.bounces = b.bounces = 0;
  a.limit = b.limit = 50'000;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  ab.deliver(PacketPtr::make(), 0);
  sim.run();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(b.bounces, 50'000u);
}

TEST(EventAlloc, PacketPoolChurnIsAllocationFree) {
  {
    std::vector<PacketPtr> warm;
    for (int i = 0; i < 128; ++i) warm.push_back(PacketPtr::make());
  }
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100'000; ++i) {
    PacketPtr p = PacketPtr::make();
    p->psn = static_cast<std::uint32_t>(i);
    PacketPtr q = std::move(p);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
}  // namespace dcp
