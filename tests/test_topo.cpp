// Unit tests for topology builders: CLOS wiring/routes, testbed parallel
// links, path_info metadata and ideal-FCT normalization.

#include <gtest/gtest.h>

#include "topo/clos.h"
#include "topo/dumbbell.h"
#include "topo/testbed.h"

namespace dcp {
namespace {

struct TopoFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
};

TEST(Clos, DimensionsAndRoutes) {
  TopoFixture f;
  ClosParams p;
  p.spines = 2;
  p.leaves = 3;
  p.hosts_per_leaf = 4;
  ClosTopology t = build_clos(f.net, p);
  EXPECT_EQ(t.hosts.size(), 12u);
  EXPECT_EQ(t.leaves.size(), 3u);
  EXPECT_EQ(t.spines.size(), 2u);

  // Leaf 0 reaches a remote host through both spines, its own host directly.
  const NodeId remote = t.hosts[11]->id();
  const NodeId local = t.hosts[0]->id();
  EXPECT_EQ(t.leaves[0]->routes().candidates(remote).size(), 2u);
  EXPECT_EQ(t.leaves[0]->routes().candidates(local).size(), 1u);
  // Spines reach every host through exactly one leaf port.
  for (auto* sp : t.spines) {
    EXPECT_EQ(sp->routes().candidates(remote).size(), 1u);
  }
}

TEST(Clos, PathInfoDistinguishesIntraAndInterRack) {
  TopoFixture f;
  ClosParams p;
  p.spines = 2;
  p.leaves = 2;
  p.hosts_per_leaf = 2;
  ClosTopology t = build_clos(f.net, p);
  const auto same = f.net.path_info(t.hosts[0]->id(), t.hosts[1]->id());
  const auto cross = f.net.path_info(t.hosts[0]->id(), t.hosts[3]->id());
  EXPECT_EQ(same.hops, 2);
  EXPECT_EQ(cross.hops, 4);
  EXPECT_LT(same.one_way_delay, cross.one_way_delay);
}

TEST(Clos, PfcThresholdsDerivedWhenEnabled) {
  TopoFixture f;
  ClosParams p;
  p.sw.pfc.enabled = true;
  ClosTopology t = build_clos(f.net, p);
  EXPECT_TRUE(t.leaves[0]->buffer().pfc().enabled);
  EXPECT_GT(t.leaves[0]->buffer().pfc().xoff_bytes, 0u);
}

TEST(Testbed, ParallelCrossLinksInstalled) {
  TopoFixture f;
  TestbedParams p;
  TestbedTopology t = build_testbed(f.net, p);
  EXPECT_EQ(t.hosts.size(), 16u);
  // sw1: 8 host ports + 8 cross ports.
  EXPECT_EQ(t.sw1->num_ports(), 16u);
  const NodeId far = t.hosts[12]->id();
  EXPECT_EQ(t.sw1->routes().candidates(far).size(), 8u);
}

TEST(Testbed, UnequalCrossLinkCapacities) {
  TopoFixture f;
  TestbedParams p;
  p.cross_links = {Bandwidth::gbps(100), Bandwidth::gbps(10)};
  TestbedTopology t = build_testbed(f.net, p);
  EXPECT_EQ(t.sw1->routes().candidates(t.hosts[8]->id()).size(), 2u);
  EXPECT_EQ(t.sw1->port(8).channel().bandwidth().as_gbps(), 100.0);
  EXPECT_EQ(t.sw1->port(9).channel().bandwidth().as_gbps(), 10.0);
}

TEST(IdealFct, ScalesWithSizeAndDistance) {
  TopoFixture f;
  ClosParams p;
  ClosTopology t = build_clos(f.net, p);
  const NodeId a = t.hosts[0]->id();
  const NodeId far = t.hosts.back()->id();
  const Time small = f.net.ideal_fct(a, far, 1000);
  const Time big = f.net.ideal_fct(a, far, 1'000'000);
  EXPECT_GT(big, small);
  // 1 MB at 100G ~ 80 us of serialization; ideal must be in that ballpark.
  EXPECT_GT(big, microseconds(80));
  EXPECT_LT(big, microseconds(200));
}

TEST(IdealFct, CrossDcDominatedByPropagation) {
  TopoFixture f;
  ClosParams p;
  p.leaf_spine_delay = microseconds(500);
  ClosTopology t = build_clos(f.net, p);
  const Time ideal = f.net.ideal_fct(t.hosts[0]->id(), t.hosts.back()->id(), 1000);
  EXPECT_GT(ideal, milliseconds(2));  // ~2 one-way delays of ~1 ms
}

TEST(BackToBackTopo, DirectDelivery) {
  TopoFixture f;
  BackToBack t = build_back_to_back(f.net);
  EXPECT_EQ(f.net.hosts().size(), 2u);
  EXPECT_EQ(f.net.path_info(t.a->id(), t.b->id()).hops, 1);
}

}  // namespace
}  // namespace dcp
