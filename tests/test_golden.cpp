// Golden-digest regression corpus: a fixed matrix of scenarios (every
// scheme, clean and faulted) is pinned to the WorldDigest values recorded
// in tests/golden/digests.txt.  ANY behavioural change to the simulator —
// packet handling, congestion control, fault injection, event ordering —
// shows up here as a digest drift and must be explained: either it is a
// bug, or the change is intentional and the corpus is regenerated with
//
//   DCP_UPDATE_GOLDEN=1 ./test_golden
//
// and the diff of tests/golden/digests.txt is reviewed in the same commit.
// Digests are computed with force_shards=1 so the corpus is independent of
// the ambient DCP_SHARDS (sharded digests are separately proven identical
// in test_shard_digest / test_snapshot).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "harness/checkpoint.h"

namespace dcp {
namespace {

constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::kPfc,     SchemeKind::kIrn,     SchemeKind::kIrnEcmp,
    SchemeKind::kMpRdma,  SchemeKind::kDcp,     SchemeKind::kCx5,
    SchemeKind::kTimeout, SchemeKind::kRackTlp, SchemeKind::kFec,
    SchemeKind::kTcp};

FuzzScenario clean_scenario(SchemeKind k) {
  FuzzScenario s;
  s.seed = 42;
  s.scheme = k;
  s.spines = 2;
  s.leaves = 4;
  s.hosts_per_leaf = 2;
  s.max_time = milliseconds(5);
  s.flows = {
      {0, 5, 64 * 1024, 4096, microseconds(5)},
      {2, 7, 24 * 1024, 0, microseconds(20)},
      {6, 1, 96 * 1024, 16384, microseconds(40)},
      {4, 3, 8 * 1024, 4096, microseconds(120)},
  };
  return s;
}

FuzzScenario faulted_scenario(SchemeKind k) {
  FuzzScenario s = clean_scenario(k);
  auto add = [&](FaultKind kind, double at_us, double dur_us, double rate) {
    FaultAction a;
    a.kind = kind;
    a.at = microseconds(at_us);
    a.duration = microseconds(dur_us);
    a.rate = rate;
    s.faults.actions.push_back(a);
  };
  add(FaultKind::kDrop, 30, 120, 0.05);
  add(FaultKind::kHoLoss, 50, 80, 0.3);
  add(FaultKind::kCorrupt, 80, 60, 0.02);
  FaultAction flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = microseconds(70);
  flap.duration = microseconds(50);
  flap.drop_in_flight = true;
  flap.sw = 2;
  s.faults.actions.push_back(flap);
  return s;
}

struct GoldenEntry {
  std::string name;
  WorldDigest d;
};

std::vector<GoldenEntry> compute_matrix() {
  std::vector<GoldenEntry> out;
  auto run = [&](const std::string& name, const FuzzScenario& s) {
    WorldSpec ws = fuzz_world_spec(s, FuzzOptions{});
    ws.force_shards = 1;  // corpus is the serial reference digest
    SimWorld w(ws);
    w.run_until_done();
    out.push_back({name, w.digest()});
  };
  for (SchemeKind k : kAllSchemes) {
    run(std::string(scheme_name(k)) + "/clean", clean_scenario(k));
    run(std::string(scheme_name(k)) + "/faulted", faulted_scenario(k));
  }
  // A pair of generated fuzz scenarios pins the generator itself too.
  for (std::uint64_t seed : {7u, 1234u}) {
    std::ostringstream name;
    name << "fuzz/seed-" << seed;
    run(name.str(), generate_fuzz_scenario(seed));
  }
  return out;
}

std::string corpus_path() { return std::string(DCP_GOLDEN_DIR) + "/digests.txt"; }

std::map<std::string, WorldDigest> load_corpus(bool* ok) {
  std::map<std::string, WorldDigest> out;
  std::ifstream in(corpus_path());
  *ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name, hex;
    std::uint64_t events = 0;
    if (!(ls >> name >> hex >> events)) {
      *ok = false;
      return out;
    }
    WorldDigest d;
    d.value = std::strtoull(hex.c_str(), nullptr, 16);
    d.events = events;
    out[name] = d;
  }
  return out;
}

void write_corpus(const std::vector<GoldenEntry>& matrix) {
  std::ofstream out(corpus_path());
  ASSERT_TRUE(out.good()) << "cannot write " << corpus_path();
  out << "# Golden WorldDigest corpus — regenerate with DCP_UPDATE_GOLDEN=1 "
         "./test_golden\n"
      << "# name digest(hex) events\n";
  char hex[32];
  for (const GoldenEntry& e : matrix) {
    std::snprintf(hex, sizeof hex, "%016llx", (unsigned long long)e.d.value);
    out << e.name << " " << hex << " " << e.d.events << "\n";
  }
}

TEST(Golden, DigestMatrixMatchesCorpus) {
  const std::vector<GoldenEntry> matrix = compute_matrix();
  for (const GoldenEntry& e : matrix) {
    EXPECT_GT(e.d.events, 0u) << e.name << ": scenario ran no events";
  }

  if (std::getenv("DCP_UPDATE_GOLDEN") != nullptr) {
    write_corpus(matrix);
    GTEST_LOG_(INFO) << "regenerated " << corpus_path() << " with " << matrix.size()
                     << " entries";
    return;
  }

  bool ok = false;
  const std::map<std::string, WorldDigest> corpus = load_corpus(&ok);
  ASSERT_TRUE(ok) << "missing or malformed corpus at " << corpus_path()
                  << " — run DCP_UPDATE_GOLDEN=1 ./test_golden once and commit it";
  ASSERT_EQ(corpus.size(), matrix.size())
      << "corpus entry count drifted — regenerate with DCP_UPDATE_GOLDEN=1 and "
         "review the diff";

  for (const GoldenEntry& e : matrix) {
    auto it = corpus.find(e.name);
    ASSERT_NE(it, corpus.end()) << "no golden entry for " << e.name;
    EXPECT_EQ(it->second.value, e.d.value)
        << "UNEXPLAINED DIGEST DRIFT in " << e.name << ": golden "
        << std::hex << it->second.value << ", got " << e.d.value << std::dec
        << ".  If this change is intentional, regenerate tests/golden/digests.txt "
           "with DCP_UPDATE_GOLDEN=1 and commit the diff with an explanation.";
    EXPECT_EQ(it->second.events, e.d.events)
        << "event-count drift in " << e.name << " (golden " << it->second.events
        << ", got " << e.d.events << ")";
  }
}

// The corpus digests are also exactly what the snapshot digest reports for
// a resumed run — drift in one and not the other would mean the
// checkpoint path diverged from the plain path.
TEST(Golden, ResumedRunsMatchCorpusDigests) {
  for (SchemeKind k : {SchemeKind::kDcp, SchemeKind::kIrn}) {
    WorldSpec ws = fuzz_world_spec(faulted_scenario(k), FuzzOptions{});
    ws.force_shards = 1;
    SimWorld cold(ws);
    cold.run_until_done();

    SimWorld a(ws);
    a.run_to(microseconds(60));
    SnapshotImage img;
    std::string err;
    ASSERT_TRUE(a.save(img, &err)) << err;
    SimWorld b(ws);
    ASSERT_TRUE(b.restore(img, false, &err)) << err;
    b.run_until_done();
    EXPECT_TRUE(cold.digest() == b.digest()) << scheme_name(k);
  }
}

}  // namespace
}  // namespace dcp
