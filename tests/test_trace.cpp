// Tests for the packet tracer, including hop-by-hop validation of DCP's
// header-only bounce path: trim at the switch -> receiver -> back through
// the switch -> sender -> precise retransmission.

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "stats/trace.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

struct Fixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  explicit Fixture(SwitchConfig sw) {
    star = build_star(net, 3, sw);
    apply_scheme(net, make_scheme(SchemeKind::kDcp));
  }
};

TEST(Trace, RecordsEveryHopOfAFlow) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  Fixture f(s.sw);
  PacketTracer tracer(f.net);
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[1]->id();
  spec.bytes = 5'000;  // 5 packets
  const FlowId id = f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  ASSERT_TRUE(f.net.record(id).complete());

  // Each data packet visits switch then receiver: path = [sw, dst host].
  const auto path = tracer.path_of(id, 0, PktType::kData);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], f.star.sw->id());
  EXPECT_EQ(path[1], f.star.hosts[1]->id());

  // ACKs flowed back to the sender.
  bool ack_at_sender = false;
  for (const auto& e : tracer.flow_events(id)) {
    ack_at_sender = ack_at_sender ||
                    (e.type == PktType::kAck && e.node == f.star.hosts[0]->id());
  }
  EXPECT_TRUE(ack_at_sender);
}

TEST(Trace, HoBouncePathIsSwitchReceiverSwitchSender) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.inject_loss_rate = 1.0;  // first copy of every packet is trimmed
  Fixture f(s.sw);
  // Heal the switch after the first window so the flow finishes.
  f.sim.schedule(microseconds(30), [&] { f.star.sw->config().inject_loss_rate = 0.0; });

  PacketTracer tracer(f.net);
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[2]->id();
  spec.bytes = 3'000;
  const FlowId id = f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  ASSERT_TRUE(f.net.record(id).complete());

  // The trimmed PSN 0 travels as HO: switch (as HO after trim it is seen at
  // the receiver first), then back through the switch, then the sender.
  const auto ho_path = tracer.path_of(id, 0, PktType::kHeaderOnly);
  ASSERT_GE(ho_path.size(), 3u);
  EXPECT_EQ(ho_path[0], f.star.hosts[2]->id());  // first leg: to receiver
  EXPECT_EQ(ho_path[1], f.star.sw->id());        // bounced: back via switch
  EXPECT_EQ(ho_path[2], f.star.hosts[0]->id());  // second leg: to sender

  // And the data packet eventually reached the receiver (retransmission).
  const auto data_path = tracer.path_of(id, 0, PktType::kData);
  EXPECT_EQ(data_path.back(), f.star.hosts[2]->id());
}

TEST(Trace, FlowFilterDropsOtherTraffic) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  Fixture f(s.sw);
  FlowSpec a;
  a.src = f.star.hosts[0]->id();
  a.dst = f.star.hosts[1]->id();
  a.bytes = 10'000;
  const FlowId ia = f.net.start_flow(a);
  FlowSpec b = a;
  b.dst = f.star.hosts[2]->id();
  const FlowId ib = f.net.start_flow(b);
  PacketTracer tracer(f.net, /*flow_filter=*/ib);
  f.net.run_until_done(seconds(1));
  EXPECT_GT(tracer.events().size(), 0u);
  for (const auto& e : tracer.events()) EXPECT_EQ(e.flow, ib);
  EXPECT_TRUE(tracer.flow_events(ia).empty());
}

TEST(Trace, CapBoundsMemory) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  Fixture f(s.sw);
  PacketTracer tracer(f.net, 0, /*max_events=*/10);
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[1]->id();
  spec.bytes = 100'000;
  f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  EXPECT_EQ(tracer.events().size(), 10u);
}

TEST(Trace, DumpRendersReadableLines) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  Fixture f(s.sw);
  PacketTracer tracer(f.net);
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[1]->id();
  spec.bytes = 2'000;
  f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  const std::string out = tracer.dump(5);
  EXPECT_NE(out.find("DATA"), std::string::npos);
  EXPECT_NE(out.find("us"), std::string::npos);
}

TEST(Trace, DetachStopsRecording) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  Fixture f(s.sw);
  PacketTracer tracer(f.net);
  tracer.detach();
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[1]->id();
  spec.bytes = 10'000;
  f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  EXPECT_TRUE(tracer.events().empty());
}

}  // namespace
}  // namespace dcp
