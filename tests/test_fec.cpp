// FEC reliability tier: GF(256) codec algebra, the (k, m) group transport
// end-to-end on the testbed and the WAN, recovery-counter accounting, and
// determinism — a FEC sweep must be bit-identical across DCP_JOBS, and the
// oracle-armed fuzz batch must stay clean with the scheme forced to FEC.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "transports/ec_codec.h"
#include "transports/fec.h"

namespace dcp {
namespace {

// ---------------------------------------------------------------------------
// GF(256) arithmetic
// ---------------------------------------------------------------------------

TEST(EcCodec, FieldAxioms) {
  // Spot-check the multiplicative structure: inverses invert, division
  // round-trips, and 1 is the identity.
  for (unsigned a = 1; a < 256; ++a) {
    const std::uint8_t x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, gf_inv(x)), 1) << "a=" << a;
    EXPECT_EQ(gf_mul(x, 1), x);
    EXPECT_EQ(gf_div(x, x), 1);
  }
  EXPECT_EQ(gf_mul(0, 123), 0);
  // A known product in GF(256)/0x11d: 2 * 128 = 0x1d (the reduction).
  EXPECT_EQ(gf_mul(2, 128), 0x1d);
}

std::vector<std::vector<std::uint8_t>> make_chunks(unsigned k, std::size_t len,
                                                   std::uint64_t seed) {
  std::vector<std::vector<std::uint8_t>> data(k);
  std::uint64_t s = seed;
  for (unsigned i = 0; i < k; ++i) {
    data[i].resize(len);
    for (std::size_t b = 0; b < len; ++b) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      data[i][b] = static_cast<std::uint8_t>(s >> 33);
    }
  }
  return data;
}

// Erase `lose` chunk indices, decode, and require the data chunks back
// bit-exactly.
void round_trip(unsigned k, unsigned m, const std::vector<unsigned>& lose) {
  const EcCodec codec(k, m);
  const auto data = make_chunks(k, 64, 0xfec0de + k * 31 + m);
  const auto parity = codec.encode(data);
  ASSERT_EQ(parity.size(), m);

  std::vector<std::vector<std::uint8_t>> chunks = data;
  for (const auto& p : parity) chunks.push_back(p);
  std::vector<bool> present(k + m, true);
  for (unsigned idx : lose) {
    present[idx] = false;
    chunks[idx].clear();
  }
  ASSERT_TRUE(codec.decode(chunks, present));
  for (unsigned i = 0; i < k; ++i) {
    EXPECT_EQ(chunks[i], data[i]) << "chunk " << i << " (k=" << k << ", m=" << m << ")";
  }
}

TEST(EcCodec, XorParityRecoversAnySingleLoss) {
  // m == 1 degenerates to plain XOR parity: any one loss is recoverable.
  for (unsigned idx = 0; idx < 5; ++idx) round_trip(/*k=*/4, /*m=*/1, {idx});
}

TEST(EcCodec, RecoversExactlyMLosses) {
  // MDS guarantee: any m erasures out of k+m decode.  Sweep loss patterns
  // mixing data and parity positions.
  round_trip(8, 2, {0, 1});    // two data chunks
  round_trip(8, 2, {3, 9});    // one data, one parity
  round_trip(8, 2, {8, 9});    // both parity (trivial: data intact)
  round_trip(8, 2, {0, 7});    // first and last data
  round_trip(16, 4, {0, 5, 11, 19});
  round_trip(16, 4, {12, 13, 14, 15});
  round_trip(4, 3, {0, 2, 6});
  round_trip(2, 2, {0, 1});    // all data lost, rebuilt purely from parity
}

TEST(EcCodec, MorePlusOneLossesFailClosed) {
  // m+1 erasures leave fewer than k chunks: decode must refuse (the
  // transport then falls back to per-group NACK repair).
  const unsigned k = 8, m = 2;
  const EcCodec codec(k, m);
  const auto data = make_chunks(k, 32, 99);
  const auto parity = codec.encode(data);

  std::vector<std::vector<std::uint8_t>> chunks = data;
  for (const auto& p : parity) chunks.push_back(p);
  std::vector<bool> present(k + m, true);
  present[0] = present[1] = present[8] = false;  // m+1 = 3 losses
  chunks[0].clear();
  chunks[1].clear();
  chunks[8].clear();
  EXPECT_FALSE(codec.decode(chunks, present));

  EXPECT_TRUE(EcCodec::recoverable(k, /*have_data=*/6, /*have_parity=*/2));
  EXPECT_FALSE(EcCodec::recoverable(k, /*have_data=*/6, /*have_parity=*/1));
  EXPECT_TRUE(EcCodec::recoverable(k, /*have_data=*/8, /*have_parity=*/0));
}

TEST(EcCodec, UnevenTailChunksZeroPad) {
  // The tail group's last data chunk is shorter than the rest; parity is
  // sized to the widest chunk and decode zero-pads internally.
  const unsigned k = 3, m = 2;
  const EcCodec codec(k, m);
  std::vector<std::vector<std::uint8_t>> data = {
      {1, 2, 3, 4, 5}, {9, 8, 7, 6, 5}, {42, 43}};
  const auto parity = codec.encode(data);
  ASSERT_EQ(parity[0].size(), 5u);

  std::vector<std::vector<std::uint8_t>> chunks = data;
  for (const auto& p : parity) chunks.push_back(p);
  std::vector<bool> present(k + m, true);
  present[0] = present[2] = false;
  const std::vector<std::uint8_t> want0 = chunks[0];
  const std::vector<std::uint8_t> want2 = chunks[2];
  chunks[0].clear();
  chunks[2].clear();
  ASSERT_TRUE(codec.decode(chunks, present));
  EXPECT_EQ(chunks[0], want0);
  // Reconstruction works over the padded width; the short chunk comes back
  // zero-extended, with its real prefix intact.
  ASSERT_GE(chunks[2].size(), want2.size());
  for (std::size_t i = 0; i < want2.size(); ++i) EXPECT_EQ(chunks[2][i], want2[i]);
  for (std::size_t i = want2.size(); i < chunks[2].size(); ++i) EXPECT_EQ(chunks[2][i], 0);
}

// ---------------------------------------------------------------------------
// SIMD region kernels
// ---------------------------------------------------------------------------

/// Pins the kernel level for one test and restores the hardware-resolved
/// level on exit, so test order never leaks a forced level.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(int level) : prev_(ec_simd_level()) { set_ec_simd_level(level); }
  ~ScopedSimdLevel() { set_ec_simd_level(prev_); }

 private:
  int prev_;
};

std::vector<std::uint8_t> make_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    v[i] = static_cast<std::uint8_t>(s >> 33);
  }
  return v;
}

TEST(EcCodec, RegionKernelsMatchScalarReferenceAtEveryLevel) {
  // Every vector path must produce table-exact GF(256) results: compare
  // gf_mul_region_acc / gf_mul_region at each selectable level against a
  // per-byte gf_mul reference.  Odd lengths exercise the scalar tail after
  // the 16/32-byte vector body; coefficients cover 0, 1, and high bits
  // (the reduction path).
  const int hw = ec_simd_level();
  for (const std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                              std::size_t{33}, std::size_t{257}, std::size_t{1021}}) {
    const auto src = make_bytes(n, 0xabc + n);
    const auto dst0 = make_bytes(n, 0xdef + n);
    for (const std::uint8_t coef : {0, 1, 2, 0x1d, 0x80, 0xff}) {
      std::vector<std::uint8_t> want_acc = dst0;
      for (std::size_t i = 0; i < n; ++i) want_acc[i] ^= gf_mul(coef, src[i]);
      std::vector<std::uint8_t> want_scale = dst0;
      for (std::size_t i = 0; i < n; ++i) want_scale[i] = gf_mul(coef, dst0[i]);

      for (int level = 0; level <= hw; ++level) {
        ScopedSimdLevel pin(level);
        std::vector<std::uint8_t> acc = dst0;
        gf_mul_region_acc(acc.data(), src.data(), n, coef);
        EXPECT_EQ(acc, want_acc) << "acc level=" << level << " n=" << n
                                 << " coef=" << int(coef);
        std::vector<std::uint8_t> scale = dst0;
        gf_mul_region(scale.data(), n, coef);
        EXPECT_EQ(scale, want_scale) << "scale level=" << level << " n=" << n
                                     << " coef=" << int(coef);
      }
    }
  }
}

TEST(EcCodec, EncodeDecodeBitIdenticalAcrossSimdLevels) {
  // The whole codec, not just the kernels: parity bytes and reconstructed
  // data must match the scalar path at every level the hardware offers.
  const int hw = ec_simd_level();
  const unsigned k = 8, m = 3;
  const auto data = make_chunks(k, 1021, 0x51dd);  // odd length: vector + tail

  std::vector<std::vector<std::uint8_t>> scalar_parity;
  {
    ScopedSimdLevel pin(0);
    scalar_parity = EcCodec(k, m).encode(data);
  }
  for (int level = 1; level <= hw; ++level) {
    ScopedSimdLevel pin(level);
    const EcCodec codec(k, m);
    EXPECT_EQ(codec.encode(data), scalar_parity) << "encode level=" << level;

    std::vector<std::vector<std::uint8_t>> chunks = data;
    for (const auto& p : scalar_parity) chunks.push_back(p);
    std::vector<bool> present(k + m, true);
    present[1] = present[4] = present[k] = false;  // two data + one parity
    chunks[1].clear();
    chunks[4].clear();
    chunks[k].clear();
    ASSERT_TRUE(codec.decode(chunks, present)) << "decode level=" << level;
    for (unsigned i = 0; i < k; ++i) {
      EXPECT_EQ(chunks[i], data[i]) << "decode level=" << level << " chunk " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Wire layout
// ---------------------------------------------------------------------------

TEST(FecLayout, GroupGeometry) {
  // 10 data packets at (k=4, m=1): groups of 5 wire slots, tail group of 2
  // data + 1 parity.
  const FecLayout l(/*k=*/4, /*m=*/1, /*total_data=*/10);
  EXPECT_EQ(l.full_groups, 2u);
  EXPECT_EQ(l.rem, 2u);
  EXPECT_EQ(l.groups, 3u);
  EXPECT_EQ(l.wire_total, 2u * 5 + 2 + 1);
  EXPECT_EQ(l.k_of(0), 4u);
  EXPECT_EQ(l.k_of(2), 2u);
  EXPECT_EQ(l.wire_begin(2), 10u);
  EXPECT_EQ(l.wire_end(2), 13u);
  // Wire PSN 4 is group 0's parity; PSN 12 is the tail group's parity.
  EXPECT_FALSE(l.is_data(4));
  EXPECT_TRUE(l.is_data(3));
  EXPECT_EQ(l.group_of(4), 0u);
  EXPECT_EQ(l.group_of(12), 2u);
  EXPECT_FALSE(l.is_data(12));
  EXPECT_TRUE(l.is_data(11));
  EXPECT_EQ(l.data_index(11), 9u);
  EXPECT_EQ(l.data_index(5), 4u);
}

// ---------------------------------------------------------------------------
// Transport end-to-end (testbed)
// ---------------------------------------------------------------------------

TEST(FecTransport, CleanFlowCompletesWithoutRepair) {
  LongFlowParams p;
  p.scheme = SchemeKind::kFec;
  p.flow_bytes = 2ull * 1000 * 1000;
  p.max_time = milliseconds(20);
  const LongFlowResult r = run_long_flow(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.receiver.bytes_received, p.flow_bytes);
  EXPECT_GT(r.sender.parity_packets_sent, 0u);
  EXPECT_EQ(r.sender.retransmitted_packets, 0u);
  EXPECT_EQ(r.receiver.decode_recovered_packets, 0u);
  EXPECT_EQ(r.receiver.nack_recovered_packets, 0u);
  EXPECT_GT(r.goodput_gbps, 1.0);
}

TEST(FecTransport, LossyFlowRecoversViaDecode) {
  // 2% ambient loss at the cross switch: most groups lose <= m chunks and
  // repair from parity without a single retransmission round trip.
  LongFlowParams p;
  p.scheme = SchemeKind::kFec;
  p.loss_rate = 0.02;
  p.flow_bytes = 2ull * 1000 * 1000;
  p.max_time = milliseconds(50);
  const LongFlowResult r = run_long_flow(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.receiver.bytes_received, p.flow_bytes);
  EXPECT_GT(r.receiver.decode_recovered_packets, 0u);
  // Parity-decode repair must dominate NACK repair at this loss rate.
  EXPECT_GT(r.receiver.decode_recovered_packets, r.receiver.nack_recovered_packets);
}

TEST(FecTransport, HeavyLossFallsBackToNack) {
  // At 20% loss, (8, 2) groups regularly lose more than m chunks and the
  // per-group NACK path has to carry the flow home.
  LongFlowParams p;
  p.scheme = SchemeKind::kFec;
  p.loss_rate = 0.20;
  p.flow_bytes = 500ull * 1000;
  p.max_time = milliseconds(100);
  const LongFlowResult r = run_long_flow(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.receiver.bytes_received, p.flow_bytes);
  EXPECT_GT(r.receiver.nack_recovered_packets, 0u);
  EXPECT_GT(r.sender.retransmitted_packets, 0u);
}

TEST(FecTransport, OracleCleanUnderLoss) {
  // The full invariant catalogue (psn-monotonic, exactly-once completion,
  // completion-consistency, recovery-accounting, no-silent-deadlock) armed
  // over a lossy FEC drill.
  FaultDrillParams p;
  p.scheme = SchemeKind::kFec;
  p.flow_bytes = 1ull * 1000 * 1000;
  p.max_time = milliseconds(50);
  p.oracle = true;
  FaultAction a;
  a.kind = FaultKind::kDrop;
  a.at = microseconds(100);
  a.duration = microseconds(400);
  a.rate = 0.05;
  a.sw = 0;
  p.faults.actions.push_back(a);
  const FaultDrillResult r = run_fault_drill(p);
  EXPECT_TRUE(r.completed);
  for (const InvariantViolation& v : r.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(FecTransport, KnobsReachTheWire) {
  // A wide group (k=16, m=4) sends 25% parity overhead; check the counter
  // matches the geometry the layout predicts.
  LongFlowParams p;
  p.scheme = SchemeKind::kFec;
  p.opt.fec_k = 16;
  p.opt.fec_m = 4;
  p.flow_bytes = 1ull * 1000 * 1000;
  p.max_time = milliseconds(20);
  const LongFlowResult r = run_long_flow(p);
  EXPECT_TRUE(r.completed);
  const std::uint64_t data_pkts = r.sender.data_packets_sent - r.sender.parity_packets_sent;
  const FecLayout l(16, 4, static_cast<std::uint32_t>(data_pkts));
  EXPECT_EQ(r.sender.parity_packets_sent, static_cast<std::uint64_t>(l.groups) * 4);
}

// ---------------------------------------------------------------------------
// Determinism: DCP_JOBS and the forced-FEC fuzz batch
// ---------------------------------------------------------------------------

struct TrialDigest {
  double goodput = 0.0;
  Time elapsed = 0;
  bool completed = false;
  std::uint64_t retransmitted = 0;
  std::uint64_t parity = 0;
  std::uint64_t decoded = 0;
  std::uint64_t events = 0;

  bool operator==(const TrialDigest&) const = default;
};

std::vector<TrialDigest> fec_sweep(unsigned jobs) {
  SweepRunner pool(jobs);
  pool.set_progress(false);
  const double rates[] = {0.0, 0.01, 0.03};
  return pool.run(6, [&](std::size_t i) {
    LongFlowParams p;
    p.scheme = SchemeKind::kFec;
    p.opt.fec_k = i % 2 == 0 ? 8 : 4;
    p.opt.fec_m = i % 2 == 0 ? 2 : 1;
    p.loss_rate = rates[i / 2];
    p.flow_bytes = 1ull * 1000 * 1000;
    p.max_time = milliseconds(20);
    const LongFlowResult r = run_long_flow(p);
    TrialDigest d;
    d.goodput = r.goodput_gbps;
    d.elapsed = r.elapsed;
    d.completed = r.completed;
    d.retransmitted = r.sender.retransmitted_packets;
    d.parity = r.sender.parity_packets_sent;
    d.decoded = r.receiver.decode_recovered_packets;
    d.events = r.core.events_processed;
    return d;
  });
}

TEST(FecSweepDigest, ParallelSweepBitIdenticalToSerial) {
  const std::vector<TrialDigest> serial = fec_sweep(1);
  const std::vector<TrialDigest> parallel = fec_sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
  }
}

TEST(FecFuzz, ForcedFecBatchOracleClean) {
  // The generated scenario pool with the scheme pinned to FEC: every
  // topology x workload x fault draw must run oracle-clean.
  for (std::size_t i = 0; i < 200; ++i) {
    FuzzScenario s = generate_fuzz_scenario(/*seed=*/4200 + i);
    s.scheme = SchemeKind::kFec;
    const FuzzVerdict v = run_fuzz_scenario(s);
    EXPECT_FALSE(v.violated) << "seed " << 4200 + i << ": " << v.invariant << " — " << v.message;
  }
}

}  // namespace
}  // namespace dcp
