// Behavioural tests for DCP-RNIC: message layout, header sizing, HO-based
// retransmission, bitmap-free receiver counting, sRetryNo reconciliation
// and the coarse-grained timeout fallback.

#include <gtest/gtest.h>

#include "core/dcp_transport.h"
#include "harness/scheme.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

TEST(MessageLayout, SingleMessageWhenMsgBytesZero) {
  MessageLayout l(10'000, 0, 1000);
  EXPECT_EQ(l.num_msgs, 1u);
  EXPECT_EQ(l.total_pkts, 10u);
  EXPECT_EQ(l.msg_pkts(0), 10u);
  EXPECT_EQ(l.msn_of_psn(9), 0u);
}

TEST(MessageLayout, UniformMessagesWithTail) {
  MessageLayout l(10'500, 4'000, 1000);
  EXPECT_EQ(l.total_pkts, 11u);
  EXPECT_EQ(l.pkts_per_full_msg, 4u);
  EXPECT_EQ(l.num_msgs, 3u);
  EXPECT_EQ(l.msg_pkts(0), 4u);
  EXPECT_EQ(l.msg_pkts(1), 4u);
  EXPECT_EQ(l.msg_pkts(2), 3u);  // tail
  EXPECT_EQ(l.msn_of_psn(0), 0u);
  EXPECT_EQ(l.msn_of_psn(3), 0u);
  EXPECT_EQ(l.msn_of_psn(4), 1u);
  EXPECT_EQ(l.msn_of_psn(10), 2u);
  EXPECT_EQ(l.msg_start_psn(2), 8u);
}

TEST(MessageLayout, ZeroByteFlowStillHasOnePacket) {
  MessageLayout l(0, 0, 1000);
  EXPECT_EQ(l.total_pkts, 1u);
  EXPECT_EQ(l.num_msgs, 1u);
}

TEST(DcpHeader, PerOpSizes) {
  // Write: 57 + RETH(16) in EVERY packet (order tolerance, §4.4).
  EXPECT_EQ(dcp_data_header_bytes(RdmaOp::kWrite), 73u);
  // Send: 57 + SSN(3).
  EXPECT_EQ(dcp_data_header_bytes(RdmaOp::kSend), 60u);
  // Write-with-Imm: 57 + RETH + SSN.
  EXPECT_EQ(dcp_data_header_bytes(RdmaOp::kWriteWithImm), 76u);
}

// ---------------------------------------------------------------------------
// Scenario fixtures: DCP across one trimming switch.
// ---------------------------------------------------------------------------

struct DcpFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  explicit DcpFixture(SwitchConfig sw, int hosts = 3) {
    star = build_star(net, hosts, sw);
    apply_scheme(net, make_scheme(SchemeKind::kDcp));
  }

  FlowId flow(int from, int to, std::uint64_t bytes, std::uint64_t msg = 0) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(from)]->id();
    spec.dst = star.hosts[static_cast<std::size_t>(to)]->id();
    spec.bytes = bytes;
    spec.msg_bytes = msg;
    return net.start_flow(spec);
  }

  DcpSender* sender(FlowId id) {
    return dynamic_cast<DcpSender*>(net.host(net.record(id).spec.src)->sender(id));
  }
  DcpReceiver* receiver(FlowId id) {
    return dynamic_cast<DcpReceiver*>(net.host(net.record(id).spec.dst)->receiver(id));
  }
};

SwitchConfig dcp_switch() {
  SwitchConfig sw = make_scheme(SchemeKind::kDcp).sw;
  return sw;
}

TEST(DcpTransport, CleanPathNoRetransmissionsNoHo) {
  DcpFixture f(dcp_switch());
  const FlowId id = f.flow(0, 2, 500'000);
  f.net.run_until_done(seconds(1));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(rec.sender.retransmitted_packets, 0u);
  EXPECT_EQ(rec.sender.ho_received, 0u);
  EXPECT_EQ(rec.sender.timeouts, 0u);
  EXPECT_EQ(rec.receiver.bytes_received, 500'000u);
}

TEST(DcpTransport, TrimmedPacketsRetransmittedPrecisely) {
  SwitchConfig sw = dcp_switch();
  sw.inject_loss_rate = 0.05;  // P4-style forced trimming
  DcpFixture f(sw);
  const FlowId id = f.flow(0, 2, 1'000'000);
  f.net.run_until_done(seconds(1));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  // Every retransmission is HO-triggered (precise), none spurious: the
  // number of retransmitted packets equals the number of HO notifications.
  EXPECT_GT(rec.sender.ho_received, 0u);
  DcpSender* snd = f.sender(id);
  ASSERT_NE(snd, nullptr);
  EXPECT_EQ(snd->dcp_stats().ho_triggered_retx + snd->dcp_stats().timeout_retx_packets,
            rec.sender.retransmitted_packets);
  EXPECT_EQ(rec.sender.timeouts, 0u);  // no RTO needed (R3)
  EXPECT_EQ(rec.receiver.bytes_received, 1'000'000u);
}

TEST(DcpTransport, RetransmissionsAreBatchedOverPcie) {
  SwitchConfig sw = dcp_switch();
  sw.inject_loss_rate = 0.10;
  DcpFixture f(sw);
  const FlowId id = f.flow(0, 2, 2'000'000);
  f.net.run_until_done(seconds(1));
  ASSERT_TRUE(f.net.record(id).complete());
  DcpSender* snd = f.sender(id);
  ASSERT_NE(snd, nullptr);
  const auto& ds = snd->dcp_stats();
  ASSERT_GT(ds.ho_triggered_retx, 0u);
  // Batching (up to 16/fetch) means strictly fewer PCIe round trips than
  // retransmitted packets once losses cluster.
  EXPECT_LE(ds.pcie_fetches, ds.ho_triggered_retx);
  EXPECT_EQ(snd->retransq().total_pushed(), ds.ho_triggered_retx + ds.stale_ho);
}

TEST(DcpTransport, ReceiverCompletesMessagesInOrder) {
  DcpFixture f(dcp_switch());
  const FlowId id = f.flow(0, 2, 100'000, 20'000);  // 5 messages
  f.net.run_until_done(seconds(1));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  DcpReceiver* rcv = f.receiver(id);
  ASSERT_NE(rcv, nullptr);
  EXPECT_EQ(rcv->tracker().emsn(), 5u);
}

TEST(DcpTransport, SilentDropRecoveredByCoarseTimeout) {
  // Disable trimming so losses are *silent* (no HO generated) — the
  // lossless-CP assumption is violated and the coarse timeout must save us.
  SwitchConfig sw = dcp_switch();
  sw.trimming = false;
  sw.inject_loss_rate = 0.02;
  DcpFixture f(sw);
  const FlowId id = f.flow(0, 2, 300'000, 50'000);
  f.net.run_until_done(seconds(2));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_GT(rec.sender.timeouts, 0u);
  EXPECT_EQ(rec.receiver.bytes_received, 300'000u);
}

TEST(DcpTransport, HoLossFallbackRecoversEveryMessage) {
  // Trimming is ON, so losses do produce HO notifications — but the
  // control queue itself drops them (inject_ho_loss_rate): the injected
  // violation of the lossless-control-plane assumption.  The precise
  // HO-driven path silently loses its signal, so the sender's retry
  // counters (sRetryNo/rRetryNo) must escalate to the coarse timeout and
  // still deliver every message.
  SwitchConfig sw = dcp_switch();
  sw.inject_loss_rate = 0.05;     // data losses -> trims -> HO packets
  sw.inject_ho_loss_rate = 0.8;   // ...which the control queue then eats
  DcpFixture f(sw);
  const FlowId id = f.flow(0, 2, 300'000, 50'000);
  f.net.run_until_done(seconds(5));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_GT(rec.sender.timeouts, 0u);  // the fallback escalation fired
  EXPECT_EQ(rec.receiver.bytes_received, 300'000u);
  const Switch::Stats stats = f.net.total_switch_stats();
  EXPECT_GT(stats.injected_ho_drops, 0u);  // the fault actually engaged
}

TEST(DcpTransport, RetryRoundsDoNotCorruptCounting) {
  // Heavy silent loss + small messages: many sRetryNo rounds; counting must
  // still complete each message exactly once.
  SwitchConfig sw = dcp_switch();
  sw.trimming = false;
  sw.inject_loss_rate = 0.10;
  DcpFixture f(sw);
  const FlowId id = f.flow(0, 2, 100'000, 10'000);
  f.net.run_until_done(seconds(5));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  DcpReceiver* rcv = f.receiver(id);
  EXPECT_EQ(rcv->tracker().emsn(), 10u);
  EXPECT_GT(rcv->dcp_stats().counter_resets, 0u);
}

TEST(DcpTransport, HoBounceSwapsDirection) {
  SwitchConfig sw = dcp_switch();
  sw.inject_loss_rate = 0.3;
  DcpFixture f(sw);
  const FlowId id = f.flow(0, 2, 200'000);
  f.net.run_until_done(seconds(1));
  ASSERT_TRUE(f.net.record(id).complete());
  DcpReceiver* rcv = f.receiver(id);
  const FlowRecord& rec = f.net.record(id);
  EXPECT_EQ(rcv->dcp_stats().ho_bounced, rec.sender.ho_received + 0u);
}

TEST(DcpTransport, MessageWindowNeverExceedsOutstandingLimit) {
  DcpFixture f(dcp_switch());
  const FlowId id = f.flow(0, 2, 2'000'000, 100'000);  // 20 messages
  // Snapshot invariant mid-flight.
  bool ok = true;
  DcpSender* snd = nullptr;
  for (int i = 0; i < 200 && !f.net.all_flows_done(); ++i) {
    f.sim.run(f.sim.now() + microseconds(10));
    snd = f.sender(id);
    if (snd != nullptr) {
      // una_msn grows monotonically and the window caps outstanding MSNs.
      ok = ok && snd->una_msn() <= 20u;
    }
  }
  f.net.run_until_done(seconds(1));
  EXPECT_TRUE(ok);
  ASSERT_TRUE(f.net.record(id).complete());
}

// ---------------------------------------------------------------------------
// §4.5 orthogonality: the bitmap-receiver variant behaves identically at
// the protocol level while paying n bits instead of log2(n).
// ---------------------------------------------------------------------------

TEST(DcpBitmapVariant, CompletesUnderTrimmingLikeCounterReceiver) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.inject_loss_rate = 0.05;
  s.tcfg.dcp_bitmap_receiver = true;
  Star star = build_star(net, 3, s.sw);
  apply_scheme(net, s);

  FlowSpec spec;
  spec.src = star.hosts[0]->id();
  spec.dst = star.hosts[2]->id();
  spec.bytes = 1'000'000;
  spec.msg_bytes = 200'000;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(5));
  const FlowRecord& rec = net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(rec.receiver.bytes_received, 1'000'000u);
  EXPECT_EQ(rec.sender.timeouts, 0u);  // HO retransmission unaffected
  auto* rcv = dynamic_cast<DcpBitmapReceiver*>(net.host(spec.dst)->receiver(id));
  ASSERT_NE(rcv, nullptr);
  EXPECT_EQ(rcv->emsn(), 5u);
  // The memory trade-off Table 3 quantifies: n bits vs 2 B/message.
  EXPECT_GE(rcv->tracking_bytes(), 1000u / 8);
}

TEST(DcpBitmapVariant, MatchesCounterReceiverResults) {
  // Same workload, both receiver flavours: byte counts, retransmission
  // totals and timeout counts must agree (the protocol is unchanged).
  auto run_variant = [](bool bitmap) {
    Simulator sim;
    Logger log{LogLevel::kOff};
    Network net{sim, log};
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    s.sw.inject_loss_rate = 0.02;
    s.tcfg.dcp_bitmap_receiver = bitmap;
    Star star = build_star(net, 4, s.sw);
    apply_scheme(net, s);
    std::vector<FlowId> ids;
    for (int i = 0; i < 3; ++i) {
      FlowSpec spec;
      spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
      spec.dst = star.hosts[3]->id();
      spec.bytes = 400'000;
      spec.msg_bytes = 100'000;
      ids.push_back(net.start_flow(spec));
    }
    net.run_until_done(seconds(5));
    std::uint64_t bytes = 0, timeouts = 0;
    bool all = true;
    for (FlowId id : ids) {
      const FlowRecord& rec = net.record(id);
      all = all && rec.complete();
      bytes += rec.receiver.bytes_received;
      timeouts += rec.sender.timeouts;
    }
    EXPECT_TRUE(all);
    return std::pair<std::uint64_t, std::uint64_t>(bytes, timeouts);
  };
  const auto counter = run_variant(false);
  const auto bitmap = run_variant(true);
  EXPECT_EQ(counter.first, bitmap.first);   // identical delivered bytes
  EXPECT_EQ(counter.first, 3u * 400'000);
  EXPECT_EQ(counter.second, 0u);
  EXPECT_EQ(bitmap.second, 0u);
}

TEST(DcpBitmapVariant, SilentLossStillRecoversViaTimeout) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.trimming = false;  // silent drops
  s.sw.inject_loss_rate = 0.05;
  s.tcfg.dcp_bitmap_receiver = true;
  Star star = build_star(net, 3, s.sw);
  apply_scheme(net, s);
  FlowSpec spec;
  spec.src = star.hosts[0]->id();
  spec.dst = star.hosts[2]->id();
  spec.bytes = 300'000;
  spec.msg_bytes = 60'000;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(5));
  const FlowRecord& rec = net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(rec.receiver.bytes_received, 300'000u);
  EXPECT_GE(rec.sender.timeouts, 1u);
  // Bitmap dedupes the whole-message resends: duplicates recorded, bytes
  // counted once.
  EXPECT_GT(rec.receiver.duplicate_packets, 0u);
}

}  // namespace
}  // namespace dcp
