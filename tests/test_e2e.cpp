// End-to-end integration tests: every scheme moves every byte reliably
// across back-to-back, star (with injected loss) and testbed topologies.

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "topo/clos.h"
#include "topo/dumbbell.h"
#include "topo/testbed.h"

namespace dcp {
namespace {

struct E2eFixture {
  Simulator sim;
  Logger log{LogLevel::kError};
  Network net{sim, log};
};

FlowId one_flow(Network& net, Host* a, Host* b, std::uint64_t bytes,
                std::uint64_t msg_bytes = 1024 * 1024) {
  FlowSpec spec;
  spec.src = a->id();
  spec.dst = b->id();
  spec.bytes = bytes;
  spec.msg_bytes = msg_bytes;
  spec.start_time = 0;
  return net.start_flow(spec);
}

class BackToBackAllSchemes : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(BackToBackAllSchemes, SingleFlowCompletesAndDeliversAllBytes) {
  E2eFixture f;
  SchemeSetup s = make_scheme(GetParam());
  BackToBack t = build_back_to_back(f.net);
  apply_scheme(f.net, s);

  const std::uint64_t kBytes = 2'000'000;
  const FlowId id = one_flow(f.net, t.a, t.b, kBytes);
  f.net.run_until_done(seconds(1));

  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete()) << scheme_name(GetParam());
  EXPECT_EQ(rec.receiver.bytes_received, kBytes);
  EXPECT_GE(rec.rx_done, 0);
  EXPECT_GE(rec.tx_done, rec.rx_done);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, BackToBackAllSchemes,
                         ::testing::Values(SchemeKind::kDcp, SchemeKind::kCx5, SchemeKind::kIrn,
                                           SchemeKind::kMpRdma, SchemeKind::kTimeout,
                                           SchemeKind::kRackTlp, SchemeKind::kTcp,
                                           SchemeKind::kPfc),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

class LossyStarAllSchemes : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(LossyStarAllSchemes, FlowsSurviveOnePercentLoss) {
  E2eFixture f;
  SchemeSetup s = make_scheme(GetParam());
  s.sw.inject_loss_rate = 0.01;
  Star t = build_star(f.net, 4, s.sw);
  apply_scheme(f.net, s);

  std::vector<FlowId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(one_flow(f.net, t.hosts[static_cast<std::size_t>(i)], t.hosts[3], 500'000));
  }
  f.net.run_until_done(seconds(2));

  for (FlowId id : ids) {
    const FlowRecord& rec = f.net.record(id);
    ASSERT_TRUE(rec.complete()) << scheme_name(GetParam()) << " flow " << id;
    EXPECT_EQ(rec.receiver.bytes_received, 500'000u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossTolerant, LossyStarAllSchemes,
                         ::testing::Values(SchemeKind::kDcp, SchemeKind::kCx5, SchemeKind::kIrn,
                                           SchemeKind::kTimeout, SchemeKind::kRackTlp),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(E2eDcp, TrimmingRecoversIncastWithoutTimeouts) {
  E2eFixture f;
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.trim_threshold_bytes = 64 * 1024;  // shallow: force heavy trimming
  Star t = build_star(f.net, 9, s.sw);
  apply_scheme(f.net, s);

  // 8-to-1 incast: enough to exceed the 100 KB trim threshold immediately.
  std::vector<FlowId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(one_flow(f.net, t.hosts[static_cast<std::size_t>(i)], t.hosts[8], 1'000'000));
  }
  f.net.run_until_done(seconds(2));

  std::uint64_t timeouts = 0;
  for (FlowId id : ids) {
    const FlowRecord& rec = f.net.record(id);
    ASSERT_TRUE(rec.complete());
    EXPECT_EQ(rec.receiver.bytes_received, 1'000'000u);
    timeouts += rec.sender.timeouts;
  }
  // Trimming + HO retransmission recover all losses without RTO.
  EXPECT_EQ(timeouts, 0u);
  const auto sw = f.net.total_switch_stats();
  EXPECT_GT(sw.trimmed, 0u);        // congestion actually happened
  EXPECT_EQ(sw.dropped_ho, 0u);     // lossless control plane held
}

TEST(E2eDcp, PfcKeepsGbnLossless) {
  E2eFixture f;
  SchemeSetup s = make_scheme(SchemeKind::kPfc);
  // Small shared buffer so the 4-to-1 incast actually crosses Xoff.
  s.sw.buffer_bytes = 512 * 1024;
  s.sw.pfc = derive_pfc_thresholds(
      s.sw.buffer_bytes, std::vector<std::pair<Bandwidth, Time>>(
                             5, {Bandwidth::gbps(100), microseconds(1)}));
  Star t = build_star(f.net, 5, s.sw);
  apply_scheme(f.net, s);

  std::vector<FlowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(one_flow(f.net, t.hosts[static_cast<std::size_t>(i)], t.hosts[4], 2'000'000));
  }
  f.net.run_until_done(seconds(2));

  for (FlowId id : ids) {
    ASSERT_TRUE(f.net.record(id).complete());
  }
  const auto sw = f.net.total_switch_stats();
  EXPECT_EQ(sw.dropped_data, 0u);          // PFC = no loss
  EXPECT_EQ(sw.lossless_violations, 0u);
  EXPECT_GT(sw.pauses_sent, 0u);           // and it actually paused
}

TEST(E2eTestbed, CrossSwitchFlowsUseParallelLinks) {
  E2eFixture f;
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  TestbedParams tb;
  tb.sw = s.sw;
  TestbedTopology topo = build_testbed(f.net, tb);
  apply_scheme(f.net, s);

  std::vector<FlowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(one_flow(f.net, topo.hosts[static_cast<std::size_t>(i)],
                           topo.hosts[static_cast<std::size_t>(8 + i)], 4'000'000));
  }
  f.net.run_until_done(seconds(2));
  for (FlowId id : ids) ASSERT_TRUE(f.net.record(id).complete());

  // Adaptive routing should spread the 4 flows over several cross links.
  int used_links = 0;
  for (std::uint32_t port = 8; port < topo.sw1->num_ports(); ++port) {
    if (topo.sw1->port(port).stats().tx_packets > 100) ++used_links;
  }
  EXPECT_GE(used_links, 2);
}

}  // namespace
}  // namespace dcp
