// Unit tests for the network primitives: packets, channels, queues, ports
// and the schedulers driving them.

#include <gtest/gtest.h>

#include "net/channel.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/port.h"
#include "net/queue.h"
#include "switch/scheduler.h"

namespace dcp {
namespace {

/// Captures everything delivered to it.
class SinkNode final : public Node {
 public:
  SinkNode(Simulator& sim, Logger& log) : Node(sim, log, 0, "sink") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t in_port) override {
    arrivals.push_back({sim_.now(), std::move(*pkt), in_port});
  }
  struct Arrival {
    Time t;
    Packet pkt;
    std::uint32_t port;
  };
  std::vector<Arrival> arrivals;
};

Packet data_packet(std::uint32_t bytes, QueueClass cls = QueueClass::kData) {
  Packet p;
  p.type = PktType::kData;
  p.wire_bytes = bytes;
  p.payload_bytes = bytes;
  p.queue_class = cls;
  return p;
}

struct NetFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
};

TEST(PacketPool, HandleLifecycleAndReuse) {
  PacketPool& pool = PacketPool::local();
  const auto before = pool.stats();
  {
    PacketPtr p = PacketPtr::make();
    p->wire_bytes = 777;
    EXPECT_TRUE(static_cast<bool>(p));
    PacketPtr q = std::move(p);
    EXPECT_FALSE(static_cast<bool>(p));  // NOLINT(bugprone-use-after-move): moved-from is empty
    EXPECT_EQ(q->wire_bytes, 777u);
  }  // q's death returns the slot
  const auto after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires + 1);
  EXPECT_EQ(after.releases, before.releases + 1);
  EXPECT_EQ(after.in_use, before.in_use);
}

TEST(PacketPool, SlabStopsGrowingUnderChurn) {
  PacketPool& pool = PacketPool::local();
  // Warm up to working depth, then churn: capacity must plateau.
  {
    std::vector<PacketPtr> window;
    for (int i = 0; i < 64; ++i) window.push_back(PacketPtr::make());
  }
  const std::size_t plateau = pool.stats().slots;
  for (int i = 0; i < 10'000; ++i) {
    PacketPtr p = PacketPtr::make();
    p->psn = static_cast<std::uint32_t>(i);
    PacketPtr q = std::move(p);
    q.reset();
  }
  EXPECT_EQ(pool.stats().slots, plateau);
  EXPECT_EQ(pool.stats().in_use, 0u);
}

TEST(PacketPool, MakeFromValueCopiesFields) {
  Packet src;
  src.wire_bytes = 123;
  src.payload_bytes = 99;
  PacketPtr p = PacketPtr::make(src);
  EXPECT_EQ(p->wire_bytes, 123u);
  EXPECT_EQ(p->payload_bytes, 99u);
}

TEST(Packet, EcmpKeyStablePerFlowAndSensitiveToPath) {
  Packet a;
  a.src = 1;
  a.dst = 2;
  a.sport = 1000;
  a.flow = 7;
  Packet b = a;
  EXPECT_EQ(ecmp_key(a), ecmp_key(b));
  b.path_id = 3;
  EXPECT_NE(ecmp_key(a), ecmp_key(b));
  b = a;
  b.flow = 8;
  EXPECT_NE(ecmp_key(a), ecmp_key(b));
}

TEST(Packet, HeaderSizesMatchThePaper) {
  EXPECT_EQ(HeaderSizes::kDcpHeaderOnly, 57u);  // Fig. 4 footnote
  EXPECT_EQ(HeaderSizes::kRoceData, 54u);
  EXPECT_EQ(HeaderSizes::kDcpAck, 61u);
}

TEST(Channel, DeliveryAfterSerializationPlusPropagation) {
  NetFixture f;
  SinkNode sink(f.sim, f.log);
  Channel ch(f.sim, Bandwidth::gbps(100), microseconds(1));
  ch.connect(&sink, 3);
  ch.deliver(data_packet(1000), ch.serialization(1000));
  f.sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].t, microseconds(1) + 80 * 1000);
  EXPECT_EQ(sink.arrivals[0].port, 3u);
}

TEST(FifoQueue, ByteAccounting) {
  FifoQueue q;
  q.push(data_packet(100));
  q.push(data_packet(200));
  EXPECT_EQ(q.bytes(), 300u);
  EXPECT_EQ(q.packets(), 2u);
  PacketPtr p = q.pop();
  EXPECT_EQ(p->wire_bytes, 100u);
  EXPECT_EQ(q.bytes(), 200u);
  EXPECT_EQ(q.max_bytes_seen(), 300u);
}

TEST(Port, ServesPacketsBackToBackAtLineRate) {
  NetFixture f;
  SinkNode sink(f.sim, f.log);
  Port port(f.sim, Bandwidth::gbps(100), 0, std::make_unique<StrictPriorityPolicy>());
  port.connect(&sink, 0);
  for (int i = 0; i < 3; ++i) port.enqueue(data_packet(1000));
  f.sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  // Serialization is 80 ns per packet; arrivals at 80/160/240 ns.
  EXPECT_EQ(sink.arrivals[0].t, 80 * kNanosecond);
  EXPECT_EQ(sink.arrivals[1].t, 160 * kNanosecond);
  EXPECT_EQ(sink.arrivals[2].t, 240 * kNanosecond);
}

TEST(Port, PauseBlocksAndResumeReleases) {
  NetFixture f;
  SinkNode sink(f.sim, f.log);
  Port port(f.sim, Bandwidth::gbps(100), 0, std::make_unique<StrictPriorityPolicy>());
  port.connect(&sink, 0);
  port.set_paused(static_cast<int>(QueueClass::kData), true);
  port.enqueue(data_packet(1000));
  f.sim.run();
  EXPECT_TRUE(sink.arrivals.empty());
  port.set_paused(static_cast<int>(QueueClass::kData), false);
  f.sim.run();
  EXPECT_EQ(sink.arrivals.size(), 1u);
}

TEST(Port, StrictPriorityServesControlFirst) {
  NetFixture f;
  SinkNode sink(f.sim, f.log);
  // Control (class 1) strictly before data (class 0).
  Port port(f.sim, Bandwidth::gbps(100), 0,
            std::make_unique<StrictPriorityPolicy>(std::vector<int>{1, 0}));
  port.connect(&sink, 0);
  // Occupy the wire, then enqueue one of each class.
  port.enqueue(data_packet(1000));
  port.enqueue(data_packet(1000));
  port.enqueue(data_packet(57, QueueClass::kControl));
  f.sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[1].pkt.queue_class, QueueClass::kControl);
}

TEST(Port, OnDequeueFiresForEveryTransmittedPacket) {
  NetFixture f;
  SinkNode sink(f.sim, f.log);
  Port port(f.sim, Bandwidth::gbps(100), 0, std::make_unique<StrictPriorityPolicy>());
  port.connect(&sink, 0);
  int dequeued = 0;
  port.set_dequeue_hook([](void* n, const PacketHot&) { ++*static_cast<int*>(n); }, &dequeued);
  for (int i = 0; i < 5; ++i) port.enqueue(data_packet(500));
  f.sim.run();
  EXPECT_EQ(dequeued, 5);
  EXPECT_EQ(port.stats().tx_packets, 5u);
  EXPECT_EQ(port.stats().tx_bytes, 2500u);
}

TEST(Dwrr, SplitsBandwidthByWeight) {
  NetFixture f;
  SinkNode sink(f.sim, f.log);
  // Control weighted 3x over data, equal packet sizes.
  Port port(f.sim, Bandwidth::gbps(100), 0,
            std::make_unique<DwrrPolicy>(std::array<double, kNumQueueClasses>{1.0, 3.0}));
  port.connect(&sink, 0);
  for (int i = 0; i < 400; ++i) {
    port.enqueue(data_packet(1000, QueueClass::kData));
    port.enqueue(data_packet(1000, QueueClass::kControl));
  }
  // Run long enough to serve ~200 packets.
  f.sim.run(200 * 80 * kNanosecond);
  int control = 0, data = 0;
  for (const auto& a : sink.arrivals) {
    (a.pkt.queue_class == QueueClass::kControl ? control : data)++;
  }
  ASSERT_GT(control + data, 100);
  const double ratio = static_cast<double>(control) / static_cast<double>(data);
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(Dwrr, WorkConservingWhenOneQueueEmpty) {
  NetFixture f;
  SinkNode sink(f.sim, f.log);
  Port port(f.sim, Bandwidth::gbps(100), 0,
            std::make_unique<DwrrPolicy>(std::array<double, kNumQueueClasses>{1.0, 8.0}));
  port.connect(&sink, 0);
  for (int i = 0; i < 10; ++i) port.enqueue(data_packet(1000, QueueClass::kData));
  f.sim.run();
  // All data served despite the (empty) control queue's higher weight.
  EXPECT_EQ(sink.arrivals.size(), 10u);
  EXPECT_EQ(sink.arrivals.back().t, 10 * 80 * kNanosecond);
}

TEST(Wrr, PaperWeightFormula) {
  // w = (N-1)/(r-N+1); e.g. N=5, r=20 -> 4/16 = 0.25.
  EXPECT_NEAR(wrr_control_weight(5, 20.0), 0.25, 1e-9);
  // Degenerate regime r <= N-1 falls back.
  EXPECT_DOUBLE_EQ(wrr_control_weight(22, 19.0, 1.5), 1.5);
}

}  // namespace
}  // namespace dcp
