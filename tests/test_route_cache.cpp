// The per-switch ECMP decision cache: hits must return exactly what the
// full lookup would have computed, and any routing change — table edit or
// link flap — must invalidate every cached pick.  The end-to-end digests
// prove the cache is output-invisible: a run with the cache disabled is
// bit-identical, including across a mid-flow link flap that forces a
// reroute.

#include <gtest/gtest.h>

#include <vector>

#include "harness/scheme.h"
#include "switch/routing.h"
#include "topo/testbed.h"

namespace dcp {
namespace {

// ---------------------------------------------------------------------------
// RouteTable (dense) unit tests
// ---------------------------------------------------------------------------

TEST(RouteTable, DenseTableBasics) {
  RouteTable rt;
  EXPECT_FALSE(rt.has_route(0));
  EXPECT_TRUE(rt.candidates(99).empty());  // out of range: no route, no crash

  rt.add_route(5, 2);
  rt.add_route(5, 3);
  rt.add_route(1, 7);
  EXPECT_TRUE(rt.has_route(5));
  EXPECT_EQ(rt.candidates(5), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(rt.candidates(1), (std::vector<std::uint32_t>{7}));
  EXPECT_FALSE(rt.has_route(4));  // hole between installed dsts

  rt.clear_routes(5);
  EXPECT_FALSE(rt.has_route(5));
  EXPECT_TRUE(rt.has_route(1));
}

TEST(RouteTable, VersionBumpsOnEveryMutation) {
  RouteTable rt;
  const std::uint32_t v0 = rt.version();
  rt.add_route(0, 1);
  EXPECT_GT(rt.version(), v0);
  const std::uint32_t v1 = rt.version();
  rt.clear_routes(0);
  EXPECT_GT(rt.version(), v1);
  const std::uint32_t v2 = rt.version();
  rt.clear_routes(42);  // clearing a never-installed dst still invalidates
  EXPECT_GT(rt.version(), v2);
}

// ---------------------------------------------------------------------------
// RouteCache unit tests
// ---------------------------------------------------------------------------

TEST(RouteCache, HitReturnsInsertedPickAndCounts) {
  RouteCache rc;
  EXPECT_EQ(rc.lookup(/*flow=*/7, /*dst=*/3, /*path_id=*/0, /*epoch=*/1), UINT32_MAX);
  rc.insert(7, 3, 0, 1, /*port=*/9);
  EXPECT_EQ(rc.lookup(7, 3, 0, 1), 9u);
  EXPECT_EQ(rc.hits(), 1u);
  EXPECT_EQ(rc.misses(), 1u);
}

TEST(RouteCache, EpochMismatchMisses) {
  RouteCache rc;
  rc.insert(7, 3, 0, /*epoch=*/1, 9);
  EXPECT_EQ(rc.lookup(7, 3, 0, /*epoch=*/2), UINT32_MAX);  // flap happened
  rc.insert(7, 3, 0, 2, 4);
  EXPECT_EQ(rc.lookup(7, 3, 0, 2), 4u);  // refilled under the new epoch
}

TEST(RouteCache, KeyFieldsAllChecked) {
  RouteCache rc;
  rc.insert(7, 3, 0, 1, 9);
  EXPECT_EQ(rc.lookup(/*flow=*/8, 3, 0, 1), UINT32_MAX);  // other flow
  EXPECT_EQ(rc.lookup(7, /*dst=*/4, 0, 1), UINT32_MAX);   // reverse direction
  EXPECT_EQ(rc.lookup(7, 3, /*path_id=*/1, 1), UINT32_MAX);
  EXPECT_EQ(rc.lookup(7, 3, 0, 1), 9u);  // the original is still there
}

// ---------------------------------------------------------------------------
// End-to-end: flap mid-flow, cache on vs off bit-identical
// ---------------------------------------------------------------------------

struct RunDigest {
  std::uint64_t bytes_received = 0;
  std::uint64_t retransmitted = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t events = 0;
  Time tx_done = 0;
  std::vector<std::uint64_t> port_tx;  // per sw1 port: exact path usage

  bool operator==(const RunDigest&) const = default;
};

/// One long cross-switch flow over 4 ECMP cross links; link flaps down
/// mid-flow and back up later, forcing a reroute and then a re-spread.
RunDigest flap_run(bool cache_on) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  // IRN-over-ECMP: the one scheme family where the pick cache engages
  // (kAdaptive/kSourcePath/kSpray draw per-packet state and bypass it).
  SchemeSetup s = make_scheme(SchemeKind::kIrnEcmp);
  TestbedParams tb;
  tb.sw = s.sw;
  tb.cross_links = std::vector<Bandwidth>(4, Bandwidth::gbps(100));
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, s);
  topo.sw1->config().route_cache = cache_on;
  topo.sw2->config().route_cache = cache_on;

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = 4'000'000;
  spec.msg_bytes = 512 * 1024;
  const FlowId id = net.start_flow(spec);

  // Whichever cross link ECMP picked, kill it mid-flow (and its reverse
  // side), then restore it later: the candidate set shrinks and grows, and
  // each change must invalidate any cached pick immediately.
  sim.schedule(microseconds(50), [&] {
    for (std::uint32_t p = 8; p < 12; ++p) {
      if (topo.sw1->port(p).stats().tx_packets > 0) {
        topo.sw1->set_link_up(p, false);
        topo.sw2->set_link_up(p, false);
        break;
      }
    }
  });
  sim.schedule(microseconds(400), [&] {
    for (std::uint32_t p = 8; p < 12; ++p) {
      if (!topo.sw1->link_up(p)) {
        topo.sw1->set_link_up(p, true);
        topo.sw2->set_link_up(p, true);
      }
    }
  });

  net.run_until_done(seconds(2));
  const FlowRecord& rec = net.record(id);
  RunDigest d;
  d.bytes_received = rec.receiver.bytes_received;
  d.retransmitted = rec.sender.retransmitted_packets;
  d.timeouts = rec.sender.timeouts;
  d.events = sim.events_processed();
  d.tx_done = rec.tx_done;
  for (std::uint32_t p = 0; p < topo.sw1->num_ports(); ++p) {
    d.port_tx.push_back(topo.sw1->port(p).stats().tx_packets);
  }
  return d;
}

TEST(RouteCacheE2E, LinkFlapMidFlowReroutesExactlyAsUncached) {
  const RunDigest cached = flap_run(true);
  const RunDigest uncached = flap_run(false);
  EXPECT_EQ(cached, uncached);
  EXPECT_EQ(cached.bytes_received, 4'000'000u);  // the flow survived the flap
}

TEST(RouteCacheE2E, CacheTakesHitsAndFlapInvalidates) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kIrnEcmp);  // ECMP: cache engages
  TestbedParams tb;
  tb.sw = s.sw;
  tb.cross_links = std::vector<Bandwidth>(4, Bandwidth::gbps(100));
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, s);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = 2'000'000;
  const FlowId id = net.start_flow(spec);

  const std::uint32_t epoch_before = topo.sw1->route_epoch();
  std::uint64_t hits_at_flap = 0;
  sim.schedule(microseconds(100), [&] {
    hits_at_flap = topo.sw1->route_cache().hits();
    // Flap a link the flow does NOT use: routing outcome is unchanged, but
    // the epoch moves and every cached pick must be refilled.
    for (std::uint32_t p = 8; p < 12; ++p) {
      if (topo.sw1->port(p).stats().tx_packets == 0) {
        topo.sw1->set_link_up(p, false);
        break;
      }
    }
  });
  net.run_until_done(seconds(2));

  ASSERT_TRUE(net.record(id).complete());
  EXPECT_GT(hits_at_flap, 0u);  // steady state rode the cache
  EXPECT_GT(topo.sw1->route_epoch(), epoch_before);
  // Traffic after the flap refilled the cache under the new epoch.
  EXPECT_GT(topo.sw1->route_cache().hits(), hits_at_flap);
  EXPECT_GE(topo.sw1->route_cache().misses(), 2u);  // initial fill + post-flap refill
}

}  // namespace
}  // namespace dcp
