// Unit tests for the switch: routing/LB, packet trimming, the lossless
// control queue, ECN marking, loss injection, shared buffer and PFC.

#include <gtest/gtest.h>

#include "net/node.h"
#include "switch/switch.h"
#include "topo/clos.h"

namespace dcp {
namespace {

class SinkNode final : public Node {
 public:
  SinkNode(Simulator& sim, Logger& log, NodeId id) : Node(sim, log, id, "sink") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t) override { arrivals.push_back(std::move(*pkt)); }
  std::vector<Packet> arrivals;
};

struct SwitchFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  std::vector<std::unique_ptr<SinkNode>> sinks;

  SinkNode* sink(NodeId id) {
    sinks.push_back(std::make_unique<SinkNode>(sim, log, id));
    return sinks.back().get();
  }
};

Packet dcp_data(NodeId src, NodeId dst, std::uint32_t psn = 0) {
  Packet p;
  p.type = PktType::kData;
  p.tag = DcpTag::kData;
  p.src = src;
  p.dst = dst;
  p.psn = psn;
  p.wire_bytes = 1057;
  p.payload_bytes = 1000;
  p.ecn_capable = true;
  return p;
}

TEST(SwitchRouting, ForwardsToRoutedPort) {
  SwitchFixture f;
  Switch sw(f.sim, f.log, 100, "sw", SwitchConfig{}, 1);
  SinkNode* a = f.sink(1);
  SinkNode* b = f.sink(2);
  const auto pa = sw.add_port(Bandwidth::gbps(100), microseconds(1));
  const auto pb = sw.add_port(Bandwidth::gbps(100), microseconds(1));
  sw.connect(pa, a, 0);
  sw.connect(pb, b, 0);
  sw.routes().add_route(1, pa);
  sw.routes().add_route(2, pb);

  sw.receive(dcp_data(1, 2), pa);
  f.sim.run();
  EXPECT_EQ(a->arrivals.size(), 0u);
  ASSERT_EQ(b->arrivals.size(), 1u);
  EXPECT_EQ(sw.stats().no_route, 0u);
}

TEST(SwitchRouting, NoRouteCountsAndDrops) {
  SwitchFixture f;
  Switch sw(f.sim, f.log, 100, "sw", SwitchConfig{}, 1);
  sw.receive(dcp_data(1, 99), 0);
  f.sim.run();
  EXPECT_EQ(sw.stats().no_route, 1u);
}

TEST(SwitchLb, EcmpIsFlowStable) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.lb = LbPolicy::kEcmp;
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  std::vector<std::uint32_t> ports;
  for (int i = 0; i < 4; ++i) {
    const auto p = sw.add_port(Bandwidth::gbps(100), 0);
    sw.connect(p, x, 0);
    sw.routes().add_route(5, p);
    ports.push_back(p);
  }
  // Same flow -> same egress every time.
  for (int i = 0; i < 50; ++i) {
    Packet p = dcp_data(1, 5, static_cast<std::uint32_t>(i));
    p.flow = 42;
    p.sport = 777;
    sw.receive(std::move(p), 0);
  }
  f.sim.run();
  int used = 0;
  for (auto p : ports) {
    if (sw.port(p).stats().tx_packets > 0) ++used;
  }
  EXPECT_EQ(used, 1);
}

TEST(SwitchLb, AdaptiveRoutingPicksLeastLoaded) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.lb = LbPolicy::kAdaptive;
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  // Two candidate egress ports; one is slow so its queue backs up.
  const auto p0 = sw.add_port(Bandwidth::gbps(1), microseconds(1));
  const auto p1 = sw.add_port(Bandwidth::gbps(100), microseconds(1));
  sw.connect(p0, x, 0);
  sw.connect(p1, x, 0);
  sw.routes().add_route(5, p0);
  sw.routes().add_route(5, p1);

  // Spread arrivals at line rate so queues drain between decisions: the
  // slow port backs up after its first packets and AR steers to the fast
  // one.
  for (int i = 0; i < 200; ++i) {
    f.sim.schedule(i * 85 * kNanosecond,
                   [&sw, i] { sw.receive(dcp_data(1, 5, static_cast<std::uint32_t>(i)), 0); });
  }
  f.sim.run();
  // The fast port should carry the overwhelming majority.
  EXPECT_GT(sw.port(p1).stats().tx_packets, 150u);
}

TEST(SwitchTrim, DataTrimmedAboveThresholdIntoControlQueue) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.trimming = true;
  cfg.trim_threshold_bytes = 3000;  // ~3 packets
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(1), microseconds(1));  // slow: queue builds
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);

  for (int i = 0; i < 10; ++i) sw.receive(dcp_data(1, 5, static_cast<std::uint32_t>(i)), 0);
  f.sim.run();
  EXPECT_GT(sw.stats().trimmed, 0u);
  EXPECT_EQ(sw.stats().dropped_data, 0u);  // trimmed, never dropped

  // Trimmed packets arrive as 57-byte header-only packets with tag 11.
  int ho = 0;
  for (const auto& a : x->arrivals) {
    if (a.type == PktType::kHeaderOnly) {
      ++ho;
      EXPECT_EQ(a.wire_bytes, HeaderSizes::kDcpHeaderOnly);
      EXPECT_EQ(a.tag, DcpTag::kHeaderOnly);
      EXPECT_EQ(a.payload_bytes, 0u);
    }
  }
  EXPECT_EQ(static_cast<std::uint64_t>(ho), sw.stats().trimmed);
  // All 10 packets reached the receiver in some form: exactly-once overall.
  EXPECT_EQ(x->arrivals.size(), 10u);
}

TEST(SwitchTrim, NonDcpAndAcksDroppedAboveThreshold) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.trimming = true;
  cfg.trim_threshold_bytes = 2000;
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(1), microseconds(1));
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);

  for (int i = 0; i < 4; ++i) sw.receive(dcp_data(1, 5, static_cast<std::uint32_t>(i)), 0);
  Packet ack;
  ack.type = PktType::kAck;
  ack.tag = DcpTag::kAck;
  ack.src = 1;
  ack.dst = 5;
  ack.wire_bytes = 61;
  sw.receive(std::move(ack), 0);
  Packet nondcp = dcp_data(1, 5, 99);
  nondcp.tag = DcpTag::kNonDcp;
  sw.receive(std::move(nondcp), 0);
  f.sim.run();
  EXPECT_GE(sw.stats().dropped_ctrl, 1u);   // the ACK died
  EXPECT_GE(sw.stats().dropped_data, 1u);   // the non-DCP data died
}

TEST(SwitchTrim, HeaderOnlyAlwaysRidesControlQueue) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.trimming = true;
  cfg.trim_threshold_bytes = 1;  // everything data-side is over threshold
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(100), 0);
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);

  Packet ho;
  ho.type = PktType::kHeaderOnly;
  ho.tag = DcpTag::kHeaderOnly;
  ho.src = 1;
  ho.dst = 5;
  ho.wire_bytes = HeaderSizes::kDcpHeaderOnly;
  ho.queue_class = QueueClass::kControl;
  sw.receive(std::move(ho), 0);
  f.sim.run();
  ASSERT_EQ(x->arrivals.size(), 1u);
  EXPECT_EQ(sw.stats().ho_seen, 1u);
  EXPECT_EQ(sw.stats().dropped_ho, 0u);
}

TEST(SwitchEcn, MarksAboveKmin) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.ecn = true;
  cfg.ecn_kmin_bytes = 2000;
  cfg.ecn_kmax_bytes = 4000;
  cfg.ecn_pmax = 1.0;
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(1), microseconds(1));
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);
  for (int i = 0; i < 20; ++i) sw.receive(dcp_data(1, 5, static_cast<std::uint32_t>(i)), 0);
  f.sim.run();
  EXPECT_GT(sw.stats().ecn_marked, 0u);
  bool any_ce = false;
  for (const auto& a : x->arrivals) any_ce = any_ce || a.ecn_ce;
  EXPECT_TRUE(any_ce);
}

TEST(SwitchLoss, InjectionDropsNonDcpTrimsDcp) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.inject_loss_rate = 1.0;  // every data packet
  cfg.trimming = true;
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(100), 0);
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);

  sw.receive(dcp_data(1, 5, 0), 0);  // DCP: trimmed
  Packet plain = dcp_data(1, 5, 1);
  plain.tag = DcpTag::kNonDcp;
  sw.receive(std::move(plain), 0);   // non-DCP: dropped
  f.sim.run();
  EXPECT_EQ(sw.stats().injected_trims, 1u);
  EXPECT_EQ(sw.stats().injected_drops, 1u);
  ASSERT_EQ(x->arrivals.size(), 1u);
  EXPECT_EQ(x->arrivals[0].type, PktType::kHeaderOnly);
}

TEST(SharedBufferTest, AllocReleaseAndCaps) {
  SharedBuffer b(1000, 2);
  EXPECT_TRUE(b.alloc(0, 0, 600));
  EXPECT_FALSE(b.alloc(1, 0, 600));  // would exceed capacity
  EXPECT_TRUE(b.alloc(1, 0, 400));
  EXPECT_EQ(b.used(), 1000u);
  b.release(0, 0, 600);
  EXPECT_EQ(b.used(), 400u);
  EXPECT_EQ(b.ingress_bytes(1, 0), 400u);
  EXPECT_EQ(b.max_used(), 1000u);
}

TEST(SharedBufferTest, PfcThresholdDecisions) {
  PfcConfig pfc;
  pfc.enabled = true;
  pfc.xoff_bytes = 500;
  pfc.xon_bytes = 300;
  SharedBuffer b(10'000, 1, pfc);
  b.alloc(0, 0, 600);
  EXPECT_TRUE(b.should_pause(0, 0));
  EXPECT_FALSE(b.should_resume(0, 0));
  b.release(0, 0, 400);
  EXPECT_FALSE(b.should_pause(0, 0));
  EXPECT_TRUE(b.should_resume(0, 0));
}

TEST(PfcThresholds, DerivationReservesHeadroom) {
  const auto pfc = derive_pfc_thresholds(
      32ull * 1024 * 1024,
      std::vector<std::pair<Bandwidth, Time>>(32, {Bandwidth::gbps(100), microseconds(1)}));
  EXPECT_TRUE(pfc.enabled);
  EXPECT_GT(pfc.xoff_bytes, 64u * 1024);
  EXPECT_LT(pfc.xon_bytes, pfc.xoff_bytes);
  // Long-haul ports shrink the usable share.
  const auto far = derive_pfc_thresholds(
      32ull * 1024 * 1024,
      std::vector<std::pair<Bandwidth, Time>>(32, {Bandwidth::gbps(100), microseconds(500)}));
  EXPECT_LT(far.xoff_bytes, pfc.xoff_bytes);
}

TEST(SwitchTrim, TrimPreservesHeaderFields) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.trimming = true;
  cfg.trim_threshold_bytes = 1;
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(1), 0);  // slow: queue persists
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);

  // Packet 1 goes straight to the wire, packet 2 queues (queue was empty at
  // its check), packet 3 sees a non-empty queue over the 1-byte threshold
  // and is trimmed.
  for (std::uint32_t i = 0; i < 3; ++i) {
    Packet d = dcp_data(1, 5, 4242 + i);
    d.msn = 17;
    d.retry_no = 3;
    d.flow = 777;
    sw.receive(std::move(d), 0);
  }
  f.sim.run();
  ASSERT_EQ(x->arrivals.size(), 3u);
  const Packet* found = nullptr;
  for (const Packet& a : x->arrivals) {
    if (a.type == PktType::kHeaderOnly) found = &a;
  }
  ASSERT_NE(found, nullptr);
  const Packet& ho = *found;
  // Everything the sender needs for a precise retransmission survives.
  EXPECT_EQ(ho.psn, 4244u);
  EXPECT_EQ(ho.msn, 17u);
  EXPECT_EQ(ho.retry_no, 3);
  EXPECT_EQ(ho.flow, 777u);
  EXPECT_EQ(ho.src, 1u);
  EXPECT_EQ(ho.dst, 5u);
}

TEST(SwitchLb, SprayUsesAllPortsEvenly) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.lb = LbPolicy::kSpray;
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  std::vector<std::uint32_t> ports;
  for (int i = 0; i < 4; ++i) {
    const auto p = sw.add_port(Bandwidth::gbps(100), 0);
    sw.connect(p, x, 0);
    sw.routes().add_route(5, p);
    ports.push_back(p);
  }
  for (int i = 0; i < 800; ++i) {
    Packet p = dcp_data(1, 5, static_cast<std::uint32_t>(i));
    p.flow = 42;  // same flow: spraying ignores the hash
    sw.receive(std::move(p), 0);
  }
  f.sim.run();
  for (auto p : ports) {
    EXPECT_NEAR(static_cast<double>(sw.port(p).stats().tx_packets), 200.0, 60.0);
  }
}

TEST(SwitchEcn, NeverMarksBelowKmin) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.ecn = true;
  cfg.ecn_kmin_bytes = 1'000'000;  // far above anything this test queues
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(100), 0);
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);
  for (int i = 0; i < 50; ++i) sw.receive(dcp_data(1, 5, static_cast<std::uint32_t>(i)), 0);
  f.sim.run();
  EXPECT_EQ(sw.stats().ecn_marked, 0u);
  for (const auto& a : x->arrivals) EXPECT_FALSE(a.ecn_ce);
}

TEST(SwitchPfc, PauseFrameFreezesOnlyPausedClass) {
  SwitchFixture f;
  SwitchConfig cfg;
  cfg.trimming = true;  // so control-queue traffic exists
  Switch sw(f.sim, f.log, 100, "sw", cfg, 1);
  SinkNode* x = f.sink(5);
  const auto p = sw.add_port(Bandwidth::gbps(100), microseconds(1));
  sw.connect(p, x, 0);
  sw.routes().add_route(5, p);

  // Pause the data class on the egress port via a PFC frame arriving on it.
  Packet pause;
  pause.type = PktType::kPfcPause;
  pause.pause_class = static_cast<std::uint8_t>(QueueClass::kData);
  sw.receive(std::move(pause), p);

  sw.receive(dcp_data(1, 5, 1), 0);  // data: frozen
  Packet ho;
  ho.type = PktType::kHeaderOnly;
  ho.tag = DcpTag::kHeaderOnly;
  ho.src = 1;
  ho.dst = 5;
  ho.wire_bytes = 57;
  ho.queue_class = QueueClass::kControl;
  sw.receive(std::move(ho), 0);      // control: flows through
  f.sim.run();
  ASSERT_EQ(x->arrivals.size(), 1u);
  EXPECT_EQ(x->arrivals[0].type, PktType::kHeaderOnly);

  Packet resume;
  resume.type = PktType::kPfcResume;
  resume.pause_class = static_cast<std::uint8_t>(QueueClass::kData);
  sw.receive(std::move(resume), p);
  f.sim.run();
  EXPECT_EQ(x->arrivals.size(), 2u);
}

}  // namespace
}  // namespace dcp
