// Logger under concurrency: two simulations logging from two threads into
// one shared sink must produce whole lines — never interleaved or torn —
// because Logger formats each line aside and emits it with a single write
// under a process-wide mutex.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sim/logger.h"
#include "sim/simulator.h"

namespace dcp {
namespace {

constexpr int kLinesPerThread = 2000;

/// One simulation that logs a long distinctive line per event.
void run_logging_sim(std::FILE* sink, const char* tag) {
  Simulator sim;
  Logger log(LogLevel::kInfo, sink);
  // A long payload makes torn writes (two fprintf calls racing) very
  // likely to be visible if emission were not atomic per line.
  const std::string payload(200, tag[0]);
  for (int i = 0; i < kLinesPerThread; ++i) {
    sim.schedule(i + 1, [&log, &sim, tag, &payload] {
      log.info(sim.now(), tag, payload);
    });
  }
  sim.run();
}

TEST(LoggerMt, TwoSimulationsTwoThreadsNoTornLines) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);

  std::thread t0([&] { run_logging_sim(sink, "aaaa"); });
  std::thread t1([&] { run_logging_sim(sink, "bbbb"); });
  t0.join();
  t1.join();
  std::fflush(sink);
  std::rewind(sink);

  int count_a = 0, count_b = 0, bad = 0;
  char line[1024];
  while (std::fgets(line, sizeof(line), sink) != nullptr) {
    const std::size_t len = std::strlen(line);
    ASSERT_GT(len, 0u);
    ASSERT_EQ(line[len - 1], '\n') << "torn line (no terminator): " << line;
    // Every line is exactly "[  <time>us] INFO  <tag>: <200 x tag[0]>".
    const std::string s(line, len - 1);
    const bool is_a = s.find("INFO  aaaa: ") != std::string::npos;
    const bool is_b = s.find("INFO  bbbb: ") != std::string::npos;
    ASSERT_TRUE(is_a != is_b) << "interleaved line: " << s;
    const char tag = is_a ? 'a' : 'b';
    const std::size_t colon = s.find(": ");
    ASSERT_NE(colon, std::string::npos);
    const std::string payload = s.substr(colon + 2);
    if (payload != std::string(200, tag) || s[0] != '[') {
      ++bad;
      ADD_FAILURE() << "torn/corrupt line: " << s;
    }
    (is_a ? count_a : count_b)++;
  }
  std::fclose(sink);

  EXPECT_EQ(bad, 0);
  EXPECT_EQ(count_a, kLinesPerThread);
  EXPECT_EQ(count_b, kLinesPerThread);
}

TEST(LoggerMt, LevelsStillFilter) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  Logger log(LogLevel::kWarn, sink);
  log.debug(0, "c", "hidden");
  log.warn(0, "c", "visible");
  std::fflush(sink);
  std::rewind(sink);
  int lines = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), sink) != nullptr) ++lines;
  std::fclose(sink);
  EXPECT_EQ(lines, 1);
}

}  // namespace
}  // namespace dcp
