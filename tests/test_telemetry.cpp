// Tests for the fabric telemetry sampler.

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "stats/telemetry.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

struct Fixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  Fixture() {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    star = build_star(net, 4, s.sw);
    apply_scheme(net, s);
  }
};

TEST(Telemetry, SamplesAtConfiguredInterval) {
  Fixture f;
  FabricTelemetry tel(f.net, microseconds(10));
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[1]->id();
  spec.bytes = 1'000'000;
  f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  tel.stop();
  // ~1 MB at 100G is ~85 us -> expect several samples, 10 us apart.
  ASSERT_GE(tel.samples().size(), 5u);
  for (std::size_t i = 1; i < tel.samples().size(); ++i) {
    EXPECT_EQ(tel.samples()[i].t - tel.samples()[i - 1].t, microseconds(10));
  }
}

TEST(Telemetry, ObservesQueueBuildUpUnderIncast) {
  Fixture f;
  FabricTelemetry tel(f.net, microseconds(5));
  for (int i = 0; i < 3; ++i) {
    FlowSpec spec;
    spec.src = f.star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = f.star.hosts[3]->id();
    spec.bytes = 500'000;
    f.net.start_flow(spec);
  }
  f.net.run_until_done(seconds(1));
  tel.stop();
  // 3-to-1 at full windows must queue at the victim's egress.
  EXPECT_GT(tel.peak_data_queue(), 10'000u);
  EXPECT_GT(tel.data_queue_percentile(90), 0.0);
}

TEST(Telemetry, ThroughputTracksOfferedLoad) {
  Fixture f;
  FabricTelemetry tel(f.net, microseconds(10));
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[1]->id();
  spec.bytes = 2'000'000;
  const FlowId id = f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  tel.stop();
  ASSERT_TRUE(f.net.record(id).complete());
  // The switch transmits data + returning ACK traffic; fabric throughput
  // should be near (a bit above) the flow's goodput.
  EXPECT_GT(tel.mean_throughput_gbps(), 60.0);
  EXPECT_LT(tel.mean_throughput_gbps(), 130.0);
}

TEST(Telemetry, StopEndsSampling) {
  Fixture f;
  FabricTelemetry tel(f.net, microseconds(10));
  f.sim.run(microseconds(45));
  tel.stop();
  const std::size_t n = tel.samples().size();
  f.sim.run(microseconds(200));
  EXPECT_EQ(tel.samples().size(), n);
  EXPECT_TRUE(f.sim.idle());
}

}  // namespace
}  // namespace dcp
