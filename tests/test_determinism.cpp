// Determinism: the simulator is a pure function of its seeds.  Two runs of
// the same experiment must produce bit-identical flow records — the
// property that makes every experiment in EXPERIMENTS.md reproducible.

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace dcp {
namespace {

struct Digest {
  std::vector<Time> fcts;
  std::vector<std::uint64_t> retx;
  std::uint64_t trims = 0;
  std::uint64_t events = 0;

  bool operator==(const Digest&) const = default;
};

Digest run_once(SchemeKind kind, bool with_cc) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeOptions opt;
  opt.with_cc = with_cc;
  SchemeSetup s = make_scheme(kind, opt);
  s.sw.inject_loss_rate = s.sw.pfc.enabled ? 0.0 : 0.005;
  ClosParams cp;
  cp.spines = 2;
  cp.leaves = 2;
  cp.hosts_per_leaf = 4;
  cp.sw = s.sw;
  ClosTopology topo = build_clos(net, cp);
  apply_scheme(net, s);

  FlowGenParams fg;
  fg.load = 0.4;
  fg.num_flows = 80;
  fg.seed = 7;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);
  net.run_until_done(seconds(10));

  Digest d;
  for (const FlowRecord& rec : net.records()) {
    d.fcts.push_back(rec.tx_done);
    d.retx.push_back(rec.sender.retransmitted_packets);
  }
  d.trims = net.total_switch_stats().trimmed;
  d.events = sim.events_processed();
  return d;
}

class DeterminismSweep : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(DeterminismSweep, IdenticalDigestsAcrossRuns) {
  const Digest a = run_once(GetParam(), false);
  const Digest b = run_once(GetParam(), false);
  EXPECT_EQ(a, b) << scheme_name(GetParam());
  EXPECT_GT(a.events, 1000u);  // the run actually did something
}

INSTANTIATE_TEST_SUITE_P(Schemes, DeterminismSweep,
                         ::testing::Values(SchemeKind::kDcp, SchemeKind::kIrn, SchemeKind::kCx5,
                                           SchemeKind::kMpRdma, SchemeKind::kPfc,
                                           SchemeKind::kRackTlp),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Determinism, WithDcqcnToo) {
  EXPECT_EQ(run_once(SchemeKind::kDcp, true), run_once(SchemeKind::kDcp, true));
}

TEST(Determinism, FaultPlanRunsAreReproducible) {
  // Same seed + same FaultPlan => bit-identical trajectory: fault draws
  // come from their own RNG substream keyed only by the injector seed.
  auto run_with_faults = [] {
    Simulator sim;
    Logger log{LogLevel::kOff};
    Network net{sim, log};
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    ClosParams cp;
    cp.spines = 2;
    cp.leaves = 2;
    cp.hosts_per_leaf = 4;
    cp.sw = s.sw;
    ClosTopology topo = build_clos(net, cp);
    apply_scheme(net, s);

    FaultPlan plan;
    FaultAction drop;
    drop.kind = FaultKind::kDrop;
    drop.at = microseconds(100);
    drop.duration = milliseconds(2);
    drop.rate = 0.01;
    drop.sw = 0;
    plan.actions.push_back(drop);
    FaultAction flap;
    flap.kind = FaultKind::kLinkFlap;
    flap.at = milliseconds(1);
    flap.duration = microseconds(300);
    flap.sw = 0;
    flap.port = 0;
    flap.drop_in_flight = true;
    plan.actions.push_back(flap);
    FaultInjector inj(net, plan, /*seed=*/99);

    FlowGenParams fg;
    fg.load = 0.4;
    fg.num_flows = 60;
    fg.seed = 7;
    generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);
    net.run_until_done(seconds(10));

    Digest d;
    for (const FlowRecord& rec : net.records()) {
      d.fcts.push_back(rec.tx_done);
      d.retx.push_back(rec.sender.retransmitted_packets);
    }
    d.trims = net.total_switch_stats().trimmed;
    d.events = sim.events_processed();
    return std::make_pair(d, inj.counters().dropped);
  };
  const auto a = run_with_faults();
  const auto b = run_with_faults();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);  // the faults actually bit
}

TEST(Determinism, DifferentSeedsDiffer) {
  Simulator sim1, sim2;
  Logger log{LogLevel::kOff};
  auto run_seed = [&](std::uint64_t seed) {
    Simulator sim;
    Network net{sim, log};
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    ClosParams cp;
    cp.spines = 2;
    cp.leaves = 2;
    cp.hosts_per_leaf = 2;
    cp.sw = s.sw;
    ClosTopology topo = build_clos(net, cp);
    apply_scheme(net, s);
    FlowGenParams fg;
    fg.num_flows = 30;
    fg.seed = seed;
    generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);
    net.run_until_done(seconds(5));
    Time sum = 0;
    for (const FlowRecord& rec : net.records()) sum += rec.tx_done;
    return sum;
  };
  EXPECT_NE(run_seed(1), run_seed(2));
}

}  // namespace
}  // namespace dcp
