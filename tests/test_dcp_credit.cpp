// Tests for DCP's packet-conservation flow control (the `awin` realization
// described in DESIGN.md) and the receiver's ACK keepalive.

#include <gtest/gtest.h>

#include "core/dcp_transport.h"
#include "harness/scheme.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

struct Fixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  explicit Fixture(SwitchConfig sw, int hosts = 3) { star = build_star(net, hosts, sw); }
};

TEST(DcpCredit, SenderRespectsBdpWindowOnCleanPath) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  Fixture f(s.sw);
  apply_scheme(f.net, s);

  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[2]->id();
  spec.bytes = 5'000'000;
  spec.msg_bytes = 4 * 1024 * 1024;
  const FlowId id = f.net.start_flow(spec);

  // Sample in-flight (sent - delivered) repeatedly; it must never
  // materially exceed the configured window.
  const std::uint64_t window = s.tcfg.cc.window_bytes;
  bool ok = true;
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 300 && !f.net.all_flows_done(); ++i) {
    f.sim.run(f.sim.now() + microseconds(5));
    auto* snd = f.net.host(spec.src)->sender(id);
    auto* rcv = f.net.host(spec.dst)->receiver(id);
    if (snd == nullptr || rcv == nullptr) continue;
    const std::uint64_t sent = snd->stats().data_packets_sent * 1000;
    const std::uint64_t seen = rcv->stats().data_packets * 1000;
    const std::uint64_t inflight = sent > seen ? sent - seen : 0;
    max_seen = std::max(max_seen, inflight);
    ok = ok && inflight <= window + 16'000;  // small slack for ACK coalescing
  }
  f.net.run_until_done(seconds(2));
  EXPECT_TRUE(ok) << "max in-flight " << max_seen << " vs window " << window;
  EXPECT_TRUE(f.net.record(id).complete());
}

TEST(DcpCredit, HoReturnsCreditUnderTrimming) {
  // Shallow threshold so a large share of the window is trimmed: the flow
  // still finishes at reasonable speed because HOs return credit.
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.trim_threshold_bytes = 32 * 1024;
  Fixture f(s.sw, 4);
  apply_scheme(f.net, s);

  std::vector<FlowId> ids;
  for (int i = 0; i < 3; ++i) {
    FlowSpec spec;
    spec.src = f.star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = f.star.hosts[3]->id();
    spec.bytes = 1'000'000;
    spec.msg_bytes = 256 * 1024;
    ids.push_back(f.net.start_flow(spec));
  }
  f.net.run_until_done(seconds(5));
  for (FlowId id : ids) {
    const FlowRecord& rec = f.net.record(id);
    ASSERT_TRUE(rec.complete());
    EXPECT_EQ(rec.receiver.bytes_received, 1'000'000u);
  }
  EXPECT_GT(f.net.total_switch_stats().trimmed, 0u);
}

TEST(DcpCredit, SilentLossFlushedByCoarseTimeout) {
  // Silent drops leak credit; without the timeout's write-off the window
  // would close permanently and the flow would stall forever.
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.trimming = false;  // drops are silent (no HO)
  s.sw.inject_loss_rate = 0.05;
  Fixture f(s.sw);
  apply_scheme(f.net, s);

  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[2]->id();
  spec.bytes = 500'000;
  spec.msg_bytes = 100'000;
  const FlowId id = f.net.start_flow(spec);
  f.net.run_until_done(seconds(10));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_GE(rec.sender.timeouts, 1u);
  EXPECT_EQ(rec.receiver.bytes_received, 500'000u);
}

TEST(DcpKeepalive, LostFinalAckHealedWithoutCoarseTimeout) {
  // Run a flow to (near) completion, then surgically drop the ACK path for
  // a moment: the receiver's keepalive re-ACKs must complete the sender
  // well before the 1 ms coarse timeout would.
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  Fixture f(s.sw);
  apply_scheme(f.net, s);

  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[2]->id();
  spec.bytes = 100'000;
  const FlowId id = f.net.start_flow(spec);

  // Cut the receiver's uplink just before the final ACK would be sent and
  // restore it 150 us later (well under the 1 ms RTO).
  Host* rcv_host = f.net.host(spec.dst);
  f.sim.schedule(microseconds(5), [&] { rcv_host->nic().channel().set_up(false); });
  f.sim.schedule(microseconds(160), [&] { rcv_host->nic().channel().set_up(true); });

  f.net.run_until_done(seconds(2));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(rec.sender.timeouts, 0u);              // keepalive, not RTO
  EXPECT_LT(rec.fct(), microseconds(900));         // healed quickly
  EXPECT_GT(rec.receiver.acks_sent, 1u);           // keepalives were sent
}

TEST(DcpCredit, StatsAccountingConsistent) {
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.inject_loss_rate = 0.05;  // trims
  Fixture f(s.sw);
  apply_scheme(f.net, s);

  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[2]->id();
  spec.bytes = 2'000'000;
  const FlowId id = f.net.start_flow(spec);
  f.net.run_until_done(seconds(5));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());

  // Conservation: every data transmission is either received or trimmed
  // (and the trimmed ones were retransmitted).
  auto* snd = dynamic_cast<DcpSender*>(f.net.host(spec.src)->sender(id));
  ASSERT_NE(snd, nullptr);
  EXPECT_EQ(rec.sender.data_packets_sent,
            rec.receiver.data_packets + rec.sender.ho_received);
  EXPECT_EQ(snd->dcp_stats().ho_triggered_retx + snd->dcp_stats().stale_ho,
            snd->retransq().total_pushed());
}

}  // namespace
}  // namespace dcp
