// Unit tests for the host-side RNIC Tx scheduler: QP round-robin fairness,
// strict control priority, pacing wake-ups and PFC pause handling.

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

struct HostFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  explicit HostFixture(int hosts = 4) {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    star = build_star(net, hosts, s.sw);
    apply_scheme(net, s);
  }
};

TEST(RnicSchedulerTest, RoundRobinSharesLinkFairlyAcrossQps) {
  HostFixture f;
  // Two concurrent flows from host 0 to different destinations; both are
  // backlogged, so the NIC must interleave them ~1:1.
  FlowSpec a;
  a.src = f.star.hosts[0]->id();
  a.dst = f.star.hosts[1]->id();
  a.bytes = 2'000'000;
  FlowSpec b = a;
  b.dst = f.star.hosts[2]->id();
  const FlowId ia = f.net.start_flow(a);
  const FlowId ib = f.net.start_flow(b);
  f.net.run_until_done(seconds(1));
  const FlowRecord& ra = f.net.record(ia);
  const FlowRecord& rb = f.net.record(ib);
  ASSERT_TRUE(ra.complete());
  ASSERT_TRUE(rb.complete());
  // Equal-size backlogged flows finish within ~10% of each other.
  const double ratio = static_cast<double>(ra.fct()) / static_cast<double>(rb.fct());
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(RnicSchedulerTest, ActiveSenderCountTracksRegistration) {
  HostFixture f;
  Host* h = f.star.hosts[0];
  EXPECT_EQ(h->nic().active_senders(), 0u);
  FlowSpec a;
  a.src = h->id();
  a.dst = f.star.hosts[1]->id();
  a.bytes = 100'000;
  f.net.start_flow(a);
  f.sim.run(microseconds(1));
  EXPECT_EQ(h->nic().active_senders(), 1u);
  f.net.run_until_done(seconds(1));
  EXPECT_EQ(h->nic().active_senders(), 0u);  // deregistered on completion
}

TEST(RnicSchedulerTest, TxCountersAdvance) {
  HostFixture f;
  FlowSpec a;
  a.src = f.star.hosts[0]->id();
  a.dst = f.star.hosts[1]->id();
  a.bytes = 100'000;
  f.net.start_flow(a);
  f.net.run_until_done(seconds(1));
  EXPECT_GE(f.star.hosts[0]->nic().tx_packets(), 100u);
  EXPECT_GT(f.star.hosts[0]->nic().tx_bytes(), 100'000u);  // + headers
}

TEST(RnicSchedulerTest, PauseFreezesTransmission) {
  HostFixture f;
  Host* h = f.star.hosts[0];
  FlowSpec a;
  a.src = h->id();
  a.dst = f.star.hosts[1]->id();
  a.bytes = 1'000'000;
  f.net.start_flow(a);
  f.sim.run(microseconds(5));
  const std::uint64_t before = h->nic().tx_packets();
  h->nic().set_paused(true);
  f.sim.run(f.sim.now() + microseconds(50));
  EXPECT_EQ(h->nic().tx_packets(), before);  // frozen
  h->nic().set_paused(false);
  f.net.run_until_done(seconds(1));
  EXPECT_TRUE(f.net.all_flows_done());
}

TEST(RnicSchedulerTest, ReceiverAcksBypassDataBacklog) {
  // Host 1 both receives a flow (generating ACKs) and sends a large flow.
  // Its ACKs ride the control stage and must not starve behind its own
  // data backlog — otherwise the inbound flow's sender would stall.
  HostFixture f;
  FlowSpec inbound;
  inbound.src = f.star.hosts[0]->id();
  inbound.dst = f.star.hosts[1]->id();
  inbound.bytes = 500'000;
  FlowSpec outbound;
  outbound.src = f.star.hosts[1]->id();
  outbound.dst = f.star.hosts[2]->id();
  outbound.bytes = 5'000'000;
  const FlowId in_id = f.net.start_flow(inbound);
  f.net.start_flow(outbound);
  f.net.run_until_done(seconds(1));
  ASSERT_TRUE(f.net.all_flows_done());
  // The small inbound flow must not be serialized after the big outbound
  // one (which takes ~400 us): its ACK path stayed responsive.
  EXPECT_LT(f.net.record(in_id).fct(), microseconds(200));
}

TEST(HostTest, UnroutablePacketsCounted) {
  HostFixture f;
  Packet stray;
  stray.type = PktType::kData;
  stray.flow = 9999;  // no receiver registered
  f.star.hosts[0]->receive(std::move(stray), 0);
  EXPECT_EQ(f.star.hosts[0]->unroutable_packets(), 1u);
}

TEST(HostTest, SenderReceiverLookupByFlow) {
  HostFixture f;
  FlowSpec a;
  a.src = f.star.hosts[0]->id();
  a.dst = f.star.hosts[1]->id();
  a.bytes = 1000;
  const FlowId id = f.net.start_flow(a);
  EXPECT_NE(f.star.hosts[0]->sender(id), nullptr);
  EXPECT_EQ(f.star.hosts[0]->receiver(id), nullptr);
  EXPECT_NE(f.star.hosts[1]->receiver(id), nullptr);
  EXPECT_EQ(f.star.hosts[1]->sender(id), nullptr);
  EXPECT_EQ(f.star.hosts[0]->sender(424242), nullptr);
}

}  // namespace
}  // namespace dcp
