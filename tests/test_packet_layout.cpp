// The hot/cold packet split's layout contract and its laziness guarantee.
//
// Layout: PacketHot is the per-hop record — it must stay exactly one
// cache line, with the fields the switch/port/lane path reads inside it
// and everything else banished to PacketCold.  The static_asserts here
// (and in net/packet.h) turn accidental growth into a build break; the
// runtime tests pin the pool's hot/cold pairing and the scatter/gather
// round-trip the flat Packet API is built on.
//
// Laziness: a packet that lives and dies in the fabric (switch hops,
// queues, lanes, drops) must never write its cold record — that is the
// point of the split.  packet_cold_init_count() counts lazy first-touch
// initializations on the calling thread, so the tests below prove make()
// stays hot-only and cold() initializes exactly once.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "net/channel.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace dcp {
namespace {

// ---------------------------------------------------------------------------
// Layout contract (compile-time: a violation fails the build, and these
// duplicate the header's asserts so the contract is test-visible too)
// ---------------------------------------------------------------------------

static_assert(sizeof(PacketHot) == 64, "PacketHot must stay one cache line");
static_assert(alignof(PacketHot) == 64, "PacketHot must be cache-line aligned");
static_assert(sizeof(PacketCold) == 56, "PacketCold grew — check field packing");
static_assert(sizeof(Packet) == 104, "Packet grew or picked up padding");
static_assert(sizeof(PacketPtr) == sizeof(void*), "the datapath handle must stay 8 bytes");

// The hot record must keep the classification fields the switch reads
// within the first half of its cache line (tag/type/queue_class are the
// per-hop branch inputs; flow/dst feed the ECMP cache key).
static_assert(offsetof(PacketHot, flow) == 0);
static_assert(offsetof(PacketHot, dst) < 32);
static_assert(offsetof(PacketHot, wire_bytes) < 32);
static_assert(offsetof(PacketHot, type) < 64);
static_assert(offsetof(PacketHot, cold_valid) < 64);

TEST(PacketLayout, HotRecordIsOneCacheLine) {
  // Runtime echo of the compile-time contract, so a layout change shows up
  // in test output (with the actual size) and not just as a build break.
  EXPECT_EQ(sizeof(PacketHot), 64u);
  EXPECT_EQ(alignof(PacketHot), 64u);
  EXPECT_EQ(sizeof(PacketCold), 56u);
  EXPECT_EQ(sizeof(Packet), 104u);
}

TEST(PacketLayout, PoolSlotsAreCacheLineAligned) {
  PacketPtr a = PacketPtr::make();
  PacketPtr b = PacketPtr::make();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.get()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.get()) % 64, 0u);
}

TEST(PacketLayout, ColdPairingSurvivesRecycling) {
  // The hot->cold pairing is fixed at slab allocation and must survive any
  // number of acquire/release cycles — init_hot() preserves cold_slot.
  PacketHot* hot;
  PacketCold* cold;
  {
    PacketPtr p = PacketPtr::make();
    hot = p.get();
    cold = p->cold_slot;
    ASSERT_NE(cold, nullptr);
  }  // released
  for (int i = 0; i < 100; ++i) {
    PacketPtr p = PacketPtr::make();
    if (p.get() == hot) {
      EXPECT_EQ(p->cold_slot, cold) << "pairing changed on recycle " << i;
    }
    EXPECT_NE(p->cold_slot, nullptr);
  }
}

TEST(PacketLayout, ScatterGatherRoundTripsEveryField) {
  Packet f;
  f.flow = 0x1234567890abcdefull;
  f.remote_addr = 0xdeadbeefcafef00dull;
  f.echo_ts = microseconds(3);
  f.sent_at = microseconds(7);
  f.uid = 42;
  f.src = 5;
  f.dst = 9;
  f.wire_bytes = 1000;
  f.payload_bytes = 946;
  f.psn = 17;
  f.msn = 3;
  f.ssn = 2;
  f.ack_psn = 16;
  f.sack_psn = 15;
  f.emsn = 4;
  f.path_id = 6;
  f.acct_in_port = 1;
  f.sport = 777;
  f.dport = 4791;
  f.type = PktType::kSack;
  f.tag = DcpTag::kAck;
  f.op = RdmaOp::kSend;
  f.queue_class = QueueClass::kControl;
  f.pause_class = 1;
  f.retry_no = 2;
  f.last_of_msg = true;
  f.last_of_flow = true;
  f.has_reth = true;
  f.ecn_capable = true;
  f.ecn_ce = true;
  f.is_retransmit = true;

  PacketPtr p = PacketPtr::make(f);  // scatter
  const Packet g = Packet(*p);       // gather
  EXPECT_EQ(std::memcmp(&f, &g, sizeof(Packet)), 0)
      << "scatter/gather round-trip lost a field";
}

TEST(PacketLayout, UntouchedColdGathersAsDefaults) {
  // Gathering from a hot-only packet must yield a Packet whose cold-side
  // fields are defaults — without marking the cold record valid.
  PacketPtr p = PacketPtr::make();
  p->psn = 99;
  const Packet g = Packet(*p);
  const Packet fresh;
  EXPECT_EQ(g.psn, 99u);
  EXPECT_EQ(g.uid, fresh.uid);
  EXPECT_EQ(g.sent_at, fresh.sent_at);
  EXPECT_EQ(g.echo_ts, fresh.echo_ts);
  EXPECT_EQ(g.op, fresh.op);
  EXPECT_FALSE(p->cold_valid);
}

// ---------------------------------------------------------------------------
// Laziness: the fabric path never touches the cold record
// ---------------------------------------------------------------------------

class CountingSink final : public Node {
 public:
  CountingSink(Simulator& sim, Logger& log) : Node(sim, log, 0, "sink") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t) override {
    ++received;
    pkt.reset();
  }
  int received = 0;
};

TEST(PacketLazyCold, BlankMakeInitializesHotOnly) {
  const std::uint64_t before = packet_cold_init_count();
  for (int i = 0; i < 16; ++i) {
    PacketPtr p = PacketPtr::make();
    p->wire_bytes = 64;  // hot writes are free
  }
  EXPECT_EQ(packet_cold_init_count(), before);
}

TEST(PacketLazyCold, ColdAccessorInitializesExactlyOnce) {
  PacketPtr p = PacketPtr::make();
  const std::uint64_t before = packet_cold_init_count();
  PacketCold& c = p->cold();
  EXPECT_EQ(packet_cold_init_count(), before + 1);
  EXPECT_EQ(c.uid, 0u);  // first touch resets the recycled slab bytes
  c.uid = 7;
  EXPECT_EQ(&p->cold(), &c);                        // second touch: same record...
  EXPECT_EQ(packet_cold_init_count(), before + 1);  // ...no re-init
  EXPECT_EQ(p->cold().uid, 7u);                     // and no wiped state
}

TEST(PacketLazyCold, FabricLifecycleNeverTouchesCold) {
  // A blank packet pushed through the wire -> lane -> arrival -> drop
  // lifecycle stays hot-only end to end: zero lazy cold initializations.
  Simulator sim;
  Logger log(LogLevel::kOff);
  CountingSink sink(sim, log);
  Channel ch(sim, Bandwidth::gbps(100), microseconds(1));
  ch.connect(&sink, 0);
  const Time ser = ch.serialization(1000);

  const std::uint64_t before = packet_cold_init_count();
  for (int i = 0; i < 32; ++i) {
    PacketPtr p = PacketPtr::make();
    p->type = PktType::kData;
    p->wire_bytes = 1000;
    p->payload_bytes = 1000;
    ch.deliver(std::move(p), (i + 1) * ser);
  }
  sim.run();
  EXPECT_EQ(sink.received, 32);
  EXPECT_EQ(packet_cold_init_count(), before)
      << "the fabric path wrote a cold record it never needed";
}

}  // namespace
}  // namespace dcp
