// Tests for the experiment-config parser and runner.

#include <gtest/gtest.h>

#include "harness/config.h"

namespace dcp {
namespace {

TEST(Config, ParsesFullWebsearchConfig) {
  const char* text =
      "# comment\n"
      "experiment = websearch\n"
      "scheme = irn-ecmp   # trailing comment\n"
      "with_cc = true\n"
      "cc = timely\n"
      "load = 0.7\n"
      "flows = 123\n"
      "dist = datamining\n"
      "spines = 8\n"
      "incast = yes\n"
      "incast_fan_in = 31\n";
  std::string err;
  auto cfg = parse_experiment_config(text, &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->kind, ExperimentConfig::Kind::kWebSearch);
  EXPECT_EQ(cfg->websearch.scheme, SchemeKind::kIrnEcmp);
  EXPECT_TRUE(cfg->websearch.opt.with_cc);
  EXPECT_EQ(cfg->websearch.opt.cc_type, CcConfig::Type::kTimely);
  EXPECT_DOUBLE_EQ(cfg->websearch.load, 0.7);
  EXPECT_EQ(cfg->websearch.num_flows, 123u);
  EXPECT_EQ(cfg->websearch.dist, WorkloadDist::kDataMining);
  EXPECT_EQ(cfg->websearch.clos.spines, 8);
  EXPECT_TRUE(cfg->websearch.with_incast);
  EXPECT_EQ(cfg->websearch.incast.fan_in, 31);
}

TEST(Config, DefaultsAreSane) {
  auto cfg = parse_experiment_config("");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->kind, ExperimentConfig::Kind::kWebSearch);
  EXPECT_EQ(cfg->websearch.scheme, SchemeKind::kDcp);
  EXPECT_FALSE(cfg->websearch.opt.with_cc);
}

TEST(Config, ErrorsNameTheLine) {
  std::string err;
  EXPECT_FALSE(parse_experiment_config("scheme = dcp\nbogus_key = 1\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("bogus_key"), std::string::npos);

  EXPECT_FALSE(parse_experiment_config("load = not_a_number\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);

  EXPECT_FALSE(parse_experiment_config("just a line without equals\n", &err).has_value());
  EXPECT_FALSE(parse_experiment_config("scheme = klingon\n", &err).has_value());
  EXPECT_FALSE(parse_experiment_config("with_cc = maybe\n", &err).has_value());
}

TEST(Config, LongflowRuns) {
  const char* text =
      "experiment = longflow\n"
      "scheme = dcp\n"
      "loss_rate = 0.01\n"
      "flow_bytes = 5000000\n"
      "max_time_ms = 100\n";
  auto cfg = parse_experiment_config(text);
  ASSERT_TRUE(cfg.has_value());
  const std::string report = run_configured_experiment(*cfg);
  EXPECT_NE(report.find("longflow DCP"), std::string::npos);
  EXPECT_NE(report.find("completed=yes"), std::string::npos);
}

TEST(Config, WebsearchRunsEndToEnd) {
  const char* text =
      "experiment = websearch\n"
      "scheme = dcp\n"
      "flows = 40\n"
      "load = 0.3\n"
      "max_time_ms = 2000\n";
  auto cfg = parse_experiment_config(text);
  ASSERT_TRUE(cfg.has_value());
  const std::string report = run_configured_experiment(*cfg);
  EXPECT_NE(report.find("flows 40/40"), std::string::npos);
}

TEST(Config, CollectiveRuns) {
  const char* text =
      "experiment = collective\n"
      "scheme = dcp\n"
      "collective_kind = alltoall\n"
      "groups = 2\n"
      "members = 4\n"
      "collective_bytes = 4194304\n"
      "max_time_ms = 5000\n";
  auto cfg = parse_experiment_config(text);
  ASSERT_TRUE(cfg.has_value());
  const std::string report = run_configured_experiment(*cfg);
  EXPECT_NE(report.find("done=yes"), std::string::npos);
}

TEST(Config, FaultsSectionParsesIntoPlan) {
  const char* text =
      "experiment = fault_drill\n"
      "scheme = irn\n"
      "flow_bytes = 3000000\n"
      "[faults]\n"
      "link_flap at=200us dur=300us sw=0 port=1 drop_inflight=true\n"
      "drop at=1ms dur=500us rate=0.02\n"
      "# comments still work here\n"
      "ho_loss at=2ms rate=0.1\n";
  std::string err;
  auto cfg = parse_experiment_config(text, &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->kind, ExperimentConfig::Kind::kFaultDrill);
  EXPECT_EQ(cfg->faultdrill.scheme, SchemeKind::kIrn);
  EXPECT_EQ(cfg->faultdrill.flow_bytes, 3'000'000u);
  ASSERT_EQ(cfg->faults.actions.size(), 3u);
  EXPECT_EQ(cfg->faults.actions[0].kind, FaultKind::kLinkFlap);
  EXPECT_TRUE(cfg->faults.actions[0].drop_in_flight);
  EXPECT_DOUBLE_EQ(cfg->faults.actions[1].rate, 0.02);
  // The plan fans out to every experiment that accepts one.
  EXPECT_EQ(cfg->faultdrill.faults, cfg->faults);
  EXPECT_EQ(cfg->websearch.faults, cfg->faults);
  EXPECT_EQ(cfg->longflow.faults, cfg->faults);
}

TEST(Config, FaultsSectionRoundTrips) {
  const char* text =
      "[faults]\n"
      "link_flap at=200us dur=300us sw=0 port=1 drop_inflight=true\n"
      "corrupt at=1ms dur=500us rate=0.001 sw=2\n"
      "buffer_shrink at=3ms dur=1ms frac=0.5\n"
      "blackhole at=4ms dur=100us sw=1 port=0\n";
  auto cfg = parse_experiment_config(text);
  ASSERT_TRUE(cfg.has_value());
  // Serialize the parsed plan back into a config and re-parse: identical.
  const std::string again_text = "[faults]\n" + cfg->faults.to_config_text();
  auto again = parse_experiment_config(again_text);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(cfg->faults, again->faults);
}

TEST(Config, FaultsSectionErrors) {
  std::string err;
  EXPECT_FALSE(parse_experiment_config("[faults\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);
  EXPECT_FALSE(parse_experiment_config("[warp]\n", &err).has_value());
  EXPECT_FALSE(parse_experiment_config("[faults]\ndrop at=1ms rate=7\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_FALSE(parse_experiment_config("experiment = fault_drill\n[faults]\nnonsense\n", &err)
                   .has_value());
}

TEST(Config, FaultDrillRunsEndToEnd) {
  const char* text =
      "experiment = fault_drill\n"
      "scheme = dcp\n"
      "flow_bytes = 2000000\n"
      "max_time_ms = 50\n"
      "[faults]\n"
      "drop at=100us dur=200us rate=0.02 sw=0\n";
  auto cfg = parse_experiment_config(text);
  ASSERT_TRUE(cfg.has_value());
  const std::string report = run_configured_experiment(*cfg);
  EXPECT_NE(report.find("fault_drill DCP"), std::string::npos);
  EXPECT_NE(report.find("completed=yes"), std::string::npos);
  EXPECT_NE(report.find("episodes 1"), std::string::npos);
  EXPECT_NE(report.find("Episode"), std::string::npos);  // recovery table header
}

TEST(Config, SchemeSectionParsesKnobs) {
  const char* text =
      "experiment = wanflow\n"
      "[scheme]\n"
      "kind = fec\n"
      "fec_k = 12\n"
      "fec_m = 3\n"
      "fec_stream_window_bytes = 4000000\n"
      "fec_nack_delay_us = 250\n";
  std::string err;
  auto cfg = parse_experiment_config(text, &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->kind, ExperimentConfig::Kind::kWanFlow);
  EXPECT_EQ(cfg->wanflow.scheme, SchemeKind::kFec);
  EXPECT_EQ(cfg->wanflow.opt.fec_k, 12u);
  EXPECT_EQ(cfg->wanflow.opt.fec_m, 3u);
  EXPECT_EQ(cfg->wanflow.opt.fec_stream_window_bytes, 4'000'000u);
  EXPECT_EQ(cfg->wanflow.opt.fec_nack_delay, microseconds(250));
  // The scheme fans out to every experiment, like [faults] does.
  EXPECT_EQ(cfg->longflow.scheme, SchemeKind::kFec);
  EXPECT_EQ(cfg->longflow.opt.fec_k, 12u);
}

TEST(Config, SchemeSectionRoundTripsEveryScheme) {
  const SchemeKind kinds[] = {SchemeKind::kPfc,     SchemeKind::kIrn,  SchemeKind::kIrnEcmp,
                              SchemeKind::kMpRdma,  SchemeKind::kDcp,  SchemeKind::kCx5,
                              SchemeKind::kTimeout, SchemeKind::kRackTlp, SchemeKind::kTcp,
                              SchemeKind::kFec};
  for (SchemeKind k : kinds) {
    SchemeOptions opt;
    opt.fec_k = 6;
    opt.fec_m = 2;
    opt.fec_stream_window_bytes = 123456;
    opt.fec_nack_delay = microseconds(75);
    auto cfg = parse_experiment_config(scheme_config_text(k, opt));
    ASSERT_TRUE(cfg.has_value()) << scheme_name(k);
    EXPECT_EQ(cfg->websearch.scheme, k) << scheme_name(k);
    EXPECT_EQ(cfg->websearch.opt.fec_k, 6u);
    EXPECT_EQ(cfg->websearch.opt.fec_m, 2u);
    EXPECT_EQ(cfg->websearch.opt.fec_stream_window_bytes, 123456u);
    EXPECT_EQ(cfg->websearch.opt.fec_nack_delay, microseconds(75));
  }
}

TEST(Config, SchemeSectionErrors) {
  std::string err;
  EXPECT_FALSE(parse_experiment_config("[scheme]\nkind = klingon\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_FALSE(parse_experiment_config("[scheme]\nfec_k = 0\n", &err).has_value());
  EXPECT_FALSE(parse_experiment_config("[scheme]\nfec_k = 250\nfec_m = 10\n", &err).has_value());
  EXPECT_NE(err.find("256"), std::string::npos);
  EXPECT_FALSE(parse_experiment_config("[scheme]\nbogus = 1\n", &err).has_value());
}

TEST(Config, WanflowRunsEndToEnd) {
  const char* text =
      "experiment = wanflow\n"
      "regions = 2\n"
      "hosts_per_region = 2\n"
      "wan_delay_ms = 2\n"
      "wan_loss_rate = 0.02\n"
      "flow_bytes = 1000000\n"
      "max_time_ms = 2000\n"
      "[scheme]\n"
      "kind = fec\n"
      "fec_k = 8\n"
      "fec_m = 2\n";
  auto cfg = parse_experiment_config(text);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->wanflow.wan.regions, 2);
  EXPECT_EQ(cfg->wanflow.wan.wan_delay, milliseconds(2));
  const std::string report = run_configured_experiment(*cfg);
  EXPECT_NE(report.find("wanflow FEC"), std::string::npos);
  EXPECT_NE(report.find("completed=yes"), std::string::npos);
}

TEST(Config, MissingFileReportsError) {
  std::string err;
  EXPECT_FALSE(load_experiment_config("/no/such/file.conf", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace dcp
