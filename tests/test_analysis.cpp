// Unit tests for the analytic models backing Tables 1-4 and Fig. 7.

#include <gtest/gtest.h>

#include "analysis/feature_matrix.h"
#include "analysis/lossless_distance.h"
#include "analysis/memory_model.h"
#include "analysis/packet_rate_model.h"
#include "analysis/resource_proxy.h"

namespace dcp {
namespace {

TEST(Table1, BufferPerPortMatchesPaper) {
  for (const auto& a : commodity_asics()) {
    const double b = buffer_per_port_per_100g_mb(a);
    if (a.name == "Tomahawk 3") {
      EXPECT_NEAR(b, 0.5, 0.01);
    }
    if (a.name == "Tomahawk 5") {
      EXPECT_NEAR(b, 0.32, 0.01);
    }
    if (a.name == "Tofino 1") {
      EXPECT_NEAR(b, 0.62, 0.01);
    }
    if (a.name == "Spectrum-4") {
      EXPECT_NEAR(b, 0.31, 0.01);
    }
  }
}

TEST(Table1, LosslessDistancesMatchPaper) {
  for (const auto& a : commodity_asics()) {
    const double km1 = max_lossless_km(a, 1);
    const double km8 = max_lossless_km(a, 8);
    EXPECT_NEAR(km1 / 8.0, km8, 0.01);
    if (a.name == "Tomahawk 3") {
      EXPECT_NEAR(km1, 4.1, 0.15);
      EXPECT_NEAR(km8 * 1000, 512, 15);  // meters
    }
    if (a.name == "Tofino 1") {
      EXPECT_NEAR(km1, 5.08, 0.2);
    }
    if (a.name == "Spectrum-4") {
      EXPECT_NEAR(km8 * 1000, 320, 15);
    }
  }
}

TEST(Table2, OnlyDcpMeetsAllRequirements) {
  int all_four = 0;
  for (const auto& s : feature_matrix()) {
    const bool all = s.r1_no_pfc && s.r2_packet_level_lb && s.r3_fast_retx_any && s.r4_hw_friendly;
    if (all) {
      ++all_four;
      EXPECT_EQ(s.name, "DCP");
    }
  }
  EXPECT_EQ(all_four, 1);
}

TEST(Table3, BdpGeometry) {
  TrackingMemoryInputs in;
  EXPECT_EQ(bdp_packets(in), 500u);  // 400G x 10us / 1KB
}

TEST(Table3, DcpOrdersOfMagnitudeSmaller) {
  TrackingMemoryInputs in;
  const auto bdp = bdp_bitmap_row(in);
  const auto chunk = linked_chunk_row(in);
  const auto dcp = dcp_row(in);
  EXPECT_GT(bdp.per_qp_bytes_max, 100u);
  EXPECT_LE(dcp.per_qp_bytes_max, 64u);
  EXPECT_LT(dcp.per_qp_bytes_max, bdp.per_qp_bytes_max / 5);
  // Linked chunks range from small (low OOO) up to ~the BDP bitmap.
  EXPECT_LT(chunk.per_qp_bytes_min, chunk.per_qp_bytes_max);
  EXPECT_LE(chunk.per_qp_bytes_max, bdp.per_qp_bytes_max * 2);
  // Fleet totals scale by QP count.
  EXPECT_EQ(dcp.total_10k_qps_max, dcp.per_qp_bytes_max * in.qps);
}

TEST(Fig7, DcpFlatOthersDegrade) {
  const auto sweep = packet_rate_sweep(448, 64, 300.0);
  ASSERT_GE(sweep.size(), 4u);
  const auto& first = sweep.front();
  const auto& last = sweep.back();
  // DCP and the BDP bitmap are OOO-independent.
  EXPECT_NEAR(first.dcp_mpps, last.dcp_mpps, 1.0);
  EXPECT_NEAR(first.bdp_bitmap_mpps, last.bdp_bitmap_mpps, 1.0);
  EXPECT_DOUBLE_EQ(first.dcp_mpps, 300.0);        // 1 step @ 300 MHz
  EXPECT_DOUBLE_EQ(first.bdp_bitmap_mpps, 150.0);  // 2 steps
  // Linked chunk collapses as the OOO degree grows.
  EXPECT_LT(last.linked_chunk_mpps, first.linked_chunk_mpps / 2);
  // 50 Mpps sustains 400G with 1KB MTU; the linked chunk falls below it.
  EXPECT_LT(last.linked_chunk_mpps, 60.0);
}

TEST(Table4, DcpOverheadIsMarginalVsGbn) {
  const auto rows = resource_proxy_rows(500);
  const auto* gbn = &rows[0];
  const ResourceRow* dcp = nullptr;
  const ResourceRow* rack = nullptr;
  for (const auto& r : rows) {
    if (r.scheme == "DCP-RNIC") dcp = &r;
    if (r.scheme == "RACK-TLP") rack = &r;
  }
  ASSERT_NE(dcp, nullptr);
  ASSERT_NE(rack, nullptr);
  // DCP's tracking adds only a few dozen bytes over GBN's zero...
  EXPECT_LE(dcp->tracking_bytes, 64u);
  // ...whereas RACK-TLP pays 8 B per BDP packet.
  EXPECT_EQ(rack->tracking_bytes, 500u * 8);
  EXPECT_EQ(gbn->tracking_bytes, 0u);
}

}  // namespace
}  // namespace dcp
