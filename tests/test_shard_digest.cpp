// Digest equality for space-parallel sharding: DCP_SHARDS=N must be BIT
// FOR BIT identical to DCP_SHARDS=1 (which is exactly the serial code
// path) across the fig-style experiment shapes — same goodputs, same
// FCTs, same retransmit counts, and the same events_processed, since the
// windowed execution merges to the very same event interleaving.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace dcp {
namespace {

/// Scoped DCP_SHARDS override: the harness runners read the variable when
/// they construct their ShardGroup, so set it before calling them.
class ScopedShardsEnv {
 public:
  explicit ScopedShardsEnv(int shards) {
    const char* prev = std::getenv("DCP_SHARDS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("DCP_SHARDS", std::to_string(shards).c_str(), 1);
  }
  ~ScopedShardsEnv() {
    if (had_prev_) {
      setenv("DCP_SHARDS", prev_.c_str(), 1);
    } else {
      unsetenv("DCP_SHARDS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

struct TrialDigest {
  double goodput = 0.0;
  Time elapsed = 0;
  bool completed = false;
  std::uint64_t retransmitted = 0;
  std::uint64_t events = 0;

  bool operator==(const TrialDigest&) const = default;
};

/// Fig 10/17 shape: scheme x injected-loss matrix of long testbed flows
/// (the testbed partitions into two shards, one per switch side).
std::vector<TrialDigest> long_flow_matrix(int shards) {
  ScopedShardsEnv env(shards);
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kRackTlp, SchemeKind::kIrn,
                              SchemeKind::kTimeout};
  const double rates[] = {0.0, 0.005, 0.02};
  std::vector<TrialDigest> out;
  for (double rate : rates) {
    for (SchemeKind k : kinds) {
      LongFlowParams p;
      p.scheme = k;
      p.loss_rate = rate;
      p.flow_bytes = 2ull * 1000 * 1000;
      p.max_time = milliseconds(20);
      const LongFlowResult r = run_long_flow(p);
      TrialDigest d;
      d.goodput = r.goodput_gbps;
      d.elapsed = r.elapsed;
      d.completed = r.completed;
      d.retransmitted = r.sender.retransmitted_packets;
      d.events = r.core.events_processed;
      out.push_back(d);
    }
  }
  return out;
}

TEST(ShardDigest, LongFlowMatrixShardedBitIdenticalToSerial) {
  const std::vector<TrialDigest> serial = long_flow_matrix(1);
  const std::vector<TrialDigest> sharded = long_flow_matrix(2);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], sharded[i]) << "trial " << i;
  }
  // The matrix exercised recovery across the cut, not just clean delivery.
  bool any_retx = false;
  for (const TrialDigest& d : sharded) any_retx = any_retx || d.retransmitted > 0;
  EXPECT_TRUE(any_retx);
}

/// Fig 1 shape: WebSearch background load on a 2x2x4 CLOS (one shard per
/// leaf group, spines split between them).
std::vector<TrialDigest> websearch_matrix(int shards) {
  ScopedShardsEnv env(shards);
  const std::uint64_t seeds[] = {11, 23};
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kIrn};
  std::vector<TrialDigest> out;
  for (std::size_t i = 0; i < 4; ++i) {
    WebSearchParams p;
    p.scheme = kinds[i % 2];
    p.seed = seeds[i / 2];
    p.clos.spines = 2;
    p.clos.leaves = 2;
    p.clos.hosts_per_leaf = 4;
    p.load = 0.4;
    p.num_flows = 100;
    WebSearchResult r = run_websearch(p);
    TrialDigest d;
    d.goodput = r.background.overall().percentile(99.0);
    d.completed = r.flows_completed == r.flows_total;
    d.retransmitted = r.timeouts_background;
    d.events = r.core.events_processed;
    out.push_back(d);
  }
  return out;
}

TEST(ShardDigest, WebsearchShardedBitIdenticalToSerial) {
  const std::vector<TrialDigest> serial = websearch_matrix(1);
  const std::vector<TrialDigest> sharded = websearch_matrix(2);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], sharded[i]) << "trial " << i;
  }
}

TEST(ShardDigest, OverAskedShardCountClampsToTopology) {
  // DCP_SHARDS far beyond the partition count must clamp, not crash or
  // diverge: the testbed has two natural shards.
  const std::vector<TrialDigest> serial = long_flow_matrix(1);
  const std::vector<TrialDigest> sharded = long_flow_matrix(16);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], sharded[i]) << "trial " << i;
  }
}

TEST(ShardDigest, FaultPlansForceTheSerialPath) {
  // A run with live fault injection ignores DCP_SHARDS (the injector has
  // no shard-ordering story) — digests must match serial exactly.
  auto run = [](int shards) {
    ScopedShardsEnv env(shards);
    LongFlowParams p;
    p.scheme = SchemeKind::kDcp;
    p.flow_bytes = 1ull * 1000 * 1000;
    p.max_time = milliseconds(20);
    FaultAction a;
    a.kind = FaultKind::kLinkFlap;
    a.at = microseconds(200);
    a.duration = microseconds(100);
    a.sw = 0;
    a.port = 0;
    p.faults.actions.push_back(a);
    const LongFlowResult r = run_long_flow(p);
    TrialDigest d;
    d.goodput = r.goodput_gbps;
    d.elapsed = r.elapsed;
    d.completed = r.completed;
    d.retransmitted = r.sender.retransmitted_packets;
    d.events = r.core.events_processed;
    return d;
  };
  EXPECT_EQ(run(1), run(2));
}

}  // namespace
}  // namespace dcp
