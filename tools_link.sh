#!/bin/bash
# helper: link a scratch harness binary against the project libs
SRC=$1; OUT=$2
L="build/src/libdcp_harness.a build/src/libdcp_workload.a build/src/libdcp_stats.a build/src/libdcp_analysis.a build/src/libdcp_core.a build/src/libdcp_transports.a build/src/libdcp_topo.a build/src/libdcp_host.a build/src/libdcp_cc.a build/src/libdcp_switch.a build/src/libdcp_net.a build/src/libdcp_sim.a"
g++ -std=c++20 -O2 -I src "$SRC" -o "$OUT" $L $L
