// Key-value RPC example: three clients issue GET requests (small Sends) to
// one server that answers with values (larger Sends back), the classic
// RDMA-RPC pattern.  Demonstrates two-sided verbs — Receive WQEs, the
// Shared Receive Queue, SSN-ordered matching — and measures RPC latency
// over the DCP fabric, with and without background congestion.
//
// Build & run:  ./example_kv_rpc

#include <cstdio>
#include <vector>

#include "core/verbs.h"
#include "harness/scheme.h"
#include "stats/percentile.h"
#include "topo/dumbbell.h"

using namespace dcp;

namespace {

struct Rpc {
  verbs::QueuePair* to_server;    // client -> server requests
  verbs::QueuePair* to_client;    // server -> client responses
  Time issued_at = 0;
  PercentileEstimator latency_us;
  std::uint64_t next_req = 1;
};

}  // namespace

int main() {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);

  SchemeSetup scheme = make_scheme(SchemeKind::kDcp);
  Star star = build_star(net, 5, scheme.sw);  // hosts 0-2 clients, 3 server, 4 noise
  apply_scheme(net, scheme);
  verbs::Device dev(net);

  constexpr int kClients = 3;
  constexpr std::uint64_t kReqBytes = 256;        // GET request
  constexpr std::uint64_t kValBytes = 32 * 1024;  // value payload
  constexpr int kRpcsPerClient = 40;

  // The server consumes all requests through one Shared Receive Queue.
  verbs::SharedReceiveQueue server_srq;
  for (int i = 0; i < kClients * kRpcsPerClient + 8; ++i) {
    server_srq.post_recv(1000 + static_cast<std::uint64_t>(i));
  }

  std::vector<Rpc> rpcs(kClients);
  for (int c = 0; c < kClients; ++c) {
    rpcs[static_cast<std::size_t>(c)].to_server =
        &dev.create_qp(star.hosts[static_cast<std::size_t>(c)]->id(), star.hosts[3]->id(),
                       64 * 1024);
    rpcs[static_cast<std::size_t>(c)].to_server->bind_srq(&server_srq);
    rpcs[static_cast<std::size_t>(c)].to_client =
        &dev.create_qp(star.hosts[3]->id(), star.hosts[static_cast<std::size_t>(c)]->id(),
                       64 * 1024);
  }

  // Event-driven RPC loop: poll CQs every microsecond of simulated time.
  int outstanding = 0;
  std::vector<int> remaining(kClients, kRpcsPerClient);

  auto issue = [&](int c) {
    Rpc& r = rpcs[static_cast<std::size_t>(c)];
    r.issued_at = sim.now();
    r.to_client->post_recv(static_cast<std::uint64_t>(c));  // for the response
    r.to_server->post(kReqBytes, r.next_req++, RdmaOp::kSend);
    ++outstanding;
  };

  for (int c = 0; c < kClients; ++c) issue(c);

  std::function<void()> pump = [&] {
    // Server: answer every completed request.
    verbs::WorkCompletion wc;
    for (int c = 0; c < kClients; ++c) {
      Rpc& r = rpcs[static_cast<std::size_t>(c)];
      while (r.to_server->poll_recv_cq(wc)) {
        r.to_client->post(kValBytes, wc.wr_id, RdmaOp::kSend);  // the "value"
      }
      // Client: response arrived -> record latency, maybe issue next.
      while (r.to_client->poll_recv_cq(wc)) {
        r.latency_us.add(to_us(sim.now() - r.issued_at));
        --outstanding;
        if (--remaining[static_cast<std::size_t>(c)] > 0) issue(c);
      }
      while (r.to_server->poll_cq(wc)) {
      }
      while (r.to_client->poll_cq(wc)) {
      }
    }
    bool more = outstanding > 0;
    for (int rem : remaining) more = more || rem > 0;
    if (more) sim.schedule(microseconds(1), pump);
  };
  sim.schedule(microseconds(1), pump);

  // Background elephant to perturb the fabric halfway through.
  FlowSpec noise;
  noise.src = star.hosts[4]->id();
  noise.dst = star.hosts[3]->id();
  noise.bytes = 8ull * 1024 * 1024;
  noise.start_time = microseconds(300);
  net.start_flow(noise);

  sim.run(seconds(2));

  std::printf("KV RPC over DCP: %d clients x %d GETs (%llu B req / %llu B value)\n\n", kClients,
              kRpcsPerClient, static_cast<unsigned long long>(kReqBytes),
              static_cast<unsigned long long>(kValBytes));
  std::printf("%8s %10s %10s %10s %8s\n", "client", "P50 (us)", "P95 (us)", "max (us)", "RPCs");
  for (int c = 0; c < kClients; ++c) {
    Rpc& r = rpcs[static_cast<std::size_t>(c)];
    std::printf("%8d %10.2f %10.2f %10.2f %8zu\n", c, r.latency_us.percentile(50),
                r.latency_us.percentile(95), r.latency_us.percentile(100),
                r.latency_us.count());
  }
  std::printf("\nThe 8 MB elephant at t=300us shares the server link; DCP keeps the\n"
              "small RPCs' tail bounded (no RTOs, loss recovered via the control\n"
              "plane if the queue ever trims).\n");
  return 0;
}
