// Incast storm example: 16 senders dump bursts into a single receiver
// through one DCP switch with a deliberately shallow trim threshold —
// the worst case for a lossy fabric.  Shows the lossless control plane at
// work: data packets are trimmed, header-only notifications bounce back,
// every byte is retransmitted precisely, and (with the WRR weight chosen
// by the paper's formula) not a single HO packet is lost.  Contrast with
// IRN, which needs retransmission timeouts for the same storm.
//
// Build & run:  ./example_incast_storm

#include <cstdio>

#include "harness/scheme.h"
#include "switch/scheduler.h"
#include "topo/dumbbell.h"

using namespace dcp;

namespace {

struct StormResult {
  bool all_done = false;
  double worst_fct_ms = 0.0;
  std::uint64_t timeouts = 0;
  Switch::Stats sw;
};

StormResult run_storm(SchemeKind kind) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);

  constexpr int kFanIn = 16;
  SchemeSetup scheme = make_scheme(kind);
  if (kind == SchemeKind::kDcp) {
    // Shallow data queue (64 KB) to force heavy trimming; WRR weight from
    // w = (N-1)/(r-N+1) with r = 1073/57 (data vs header-only wire size).
    scheme.sw.trim_threshold_bytes = 64 * 1024;
    scheme.sw.control_weight = wrr_control_weight(kFanIn + 1, 1073.0 / 57.0, 4.0);
  } else {
    scheme.sw.max_data_queue_bytes = 64 * 1024;  // same shallow buffer
  }
  Star star = build_star(net, kFanIn + 1, scheme.sw);
  apply_scheme(net, scheme);

  for (int i = 0; i < kFanIn; ++i) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = star.hosts[kFanIn]->id();
    spec.bytes = 1024 * 1024;
    spec.msg_bytes = 256 * 1024;
    net.start_flow(spec);
  }
  net.run_until_done(seconds(10));

  StormResult r;
  r.all_done = net.all_flows_done();
  for (const FlowRecord& rec : net.records()) {
    if (rec.complete()) r.worst_fct_ms = std::max(r.worst_fct_ms, to_ms(rec.fct()));
    r.timeouts += rec.sender.timeouts;
  }
  r.sw = net.total_switch_stats();
  return r;
}

}  // namespace

int main() {
  std::printf("16-to-1 incast, 1 MB per sender, 64 KB switch queues\n\n");

  const StormResult dcp = run_storm(SchemeKind::kDcp);
  std::printf("DCP  : all flows done=%s  worst FCT=%.2f ms  RTOs=%llu\n",
              dcp.all_done ? "yes" : "NO", dcp.worst_fct_ms,
              static_cast<unsigned long long>(dcp.timeouts));
  std::printf("       trimmed=%llu data packets -> %llu HO notifications, HO lost=%llu\n",
              static_cast<unsigned long long>(dcp.sw.trimmed),
              static_cast<unsigned long long>(dcp.sw.ho_seen),
              static_cast<unsigned long long>(dcp.sw.dropped_ho));

  const StormResult irn = run_storm(SchemeKind::kIrn);
  std::printf("\nIRN  : all flows done=%s  worst FCT=%.2f ms  RTOs=%llu\n",
              irn.all_done ? "yes" : "NO", irn.worst_fct_ms,
              static_cast<unsigned long long>(irn.timeouts));
  std::printf("       dropped=%llu data packets (recovered by SACK/RTO)\n",
              static_cast<unsigned long long>(irn.sw.dropped_data));

  std::printf("\nThe lossless control plane converts every congestion drop into a\n"
              "header-only notification; DCP needs no RTO even in this storm.\n");
  return 0;
}
