// Cross-datacenter replication example: four storage-style bulk transfers
// contend for one long-haul fiber (1 km to 1000 km, 4:1 oversubscribed).
//
// At distance, reliability style decides everything:
//   * lossy GBN drops at the congested haul and goes back N — with a long
//     RTT every loss costs a full pipe drain;
//   * GBN+PFC needs headroom proportional to the distance (Table 1); at
//     100-1000 km a 32 MB buffer cannot provide it, PFC's guarantee breaks
//     and GBN pays the same price;
//   * DCP turns every congestion drop into a header-only notification and
//     retransmits exactly the missing packets — on the same 32 MB buffer.
//
// Build & run:  ./example_cross_dc_replication

#include <cstdio>
#include <vector>

#include "harness/scheme.h"
#include "topo/clos.h"
#include "topo/testbed.h"

using namespace dcp;

namespace {

/// Aggregate goodput of the four transfers (total bytes / last completion).
double run_replication(SchemeKind kind, Time link_delay) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);

  SchemeSetup scheme = make_scheme(kind);
  // Windows/timers must scale with the long-haul RTT; DCP messages use the
  // largest size a 14-bit packet counter supports (16 MB) so 8 outstanding
  // messages cover the haul's BDP.
  const Time rtt = 2 * (2 * microseconds(1) + link_delay);
  scheme.tcfg.cc.window_bytes = bdp_bytes(Bandwidth::gbps(100), rtt);
  scheme.tcfg.rto_high = 2 * rtt + microseconds(320);
  scheme.tcfg.rto_low = rtt + microseconds(100);
  scheme.tcfg.dcp_msg_timeout = 2 * rtt + milliseconds(1);

  TestbedParams tb;
  tb.sw = scheme.sw;
  tb.cross_links = {Bandwidth::gbps(400)};  // one fat long-haul fiber
  tb.cross_link_delay = link_delay;
  if (kind == SchemeKind::kPfc) {
    // PFC thresholds must reserve headroom for the in-flight bytes of the
    // long-haul port — with 32 MB this becomes impossible at distance.
    std::vector<std::pair<Bandwidth, Time>> ports(9, {Bandwidth::gbps(100), microseconds(1)});
    ports.emplace_back(Bandwidth::gbps(400), link_delay);
    tb.sw.pfc = derive_pfc_thresholds(tb.sw.buffer_bytes, ports);
    tb.sw.pfc.enabled = true;
  }
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, scheme);

  // 4-to-1 incast *across* the haul: the congested queue sits behind the
  // long link, so PFC's PAUSE must cross it — the in-flight bytes it cannot
  // stop are exactly the headroom Table 1 says the buffer must reserve.
  constexpr int kFlows = 4;
  const std::uint64_t kBytes = 25ull * 1000 * 1000;  // 25 MB each
  std::vector<FlowId> ids;
  for (int i = 0; i < kFlows; ++i) {
    FlowSpec spec;
    spec.src = topo.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = topo.hosts[8]->id();
    spec.bytes = kBytes;
    spec.msg_bytes = 16 * 1024 * 1024;
    ids.push_back(net.start_flow(spec));
  }
  net.run_until_done(seconds(120));

  Time last = 0;
  for (FlowId id : ids) {
    const FlowRecord& rec = net.record(id);
    if (!rec.complete()) return 0.0;  // did not finish in the budget
    last = std::max(last, rec.tx_done);
  }
  return static_cast<double>(kFlows * kBytes) * 8.0 / (static_cast<double>(last) / kSecond) /
         1e9;
}

}  // namespace

int main() {
  std::printf("4 x 25 MB replication batches incast across one 400G long-haul fiber,\n"
              "32 MB switch buffers, aggregate goodput in Gbps (0 = stalled):\n\n");
  std::printf("%10s %12s %12s %12s\n", "distance", "DCP", "GBN lossy", "GBN+PFC");
  struct Hop {
    const char* label;
    Time delay;
  };
  // 5 us/km of fiber.
  for (const Hop h : {Hop{"1 km", microseconds(5)}, Hop{"10 km", microseconds(50)},
                      Hop{"100 km", microseconds(500)}, Hop{"1000 km", milliseconds(5)}}) {
    const double dcp = run_replication(SchemeKind::kDcp, h.delay);
    const double gbn = run_replication(SchemeKind::kCx5, h.delay);
    const double pfc = run_replication(SchemeKind::kPfc, h.delay);
    std::printf("%10s %12.1f %12.1f %12.1f\n", h.label, dcp, gbn, pfc);
  }
  std::printf("\nDCP sustains the haul on commodity buffers at every distance; the\n"
              "paper's 10 km testbed experiment (~85 Gbps) corresponds to row two.\n");
  return 0;
}
