// Quickstart: bring up a small DCP fabric and move data with the
// ibverbs-flavoured API.
//
//   1. create a Simulator + Network;
//   2. build a topology whose switches run DCP-Switch (trimming + WRR
//      control queue);
//   3. install the DCP transport via the scheme registry;
//   4. open a queue pair and post RDMA Writes;
//   5. poll completions and inspect what the fabric did.
//
// Build & run:  ./example_quickstart

#include <cstdio>

#include "core/verbs.h"
#include "harness/scheme.h"
#include "topo/dumbbell.h"

int main() {
  using namespace dcp;

  // --- 1. Simulation context ---------------------------------------------
  Simulator sim;
  Logger log(LogLevel::kWarn);
  Network net(sim, log);

  // --- 2. Topology: 4 hosts on one DCP switch ------------------------------
  // make_scheme(kDcp) returns the switch config (trimming enabled, control
  // queue weighted per §4.2) and the matching transport configuration.
  SchemeSetup scheme = make_scheme(SchemeKind::kDcp);
  Star star = build_star(net, /*hosts=*/4, scheme.sw);

  // --- 3. Transport --------------------------------------------------------
  apply_scheme(net, scheme);

  // --- 4. Queue pairs -------------------------------------------------------
  verbs::Device dev(net);
  verbs::QueuePair& qp = dev.create_qp(star.hosts[0]->id(), star.hosts[1]->id(),
                                       /*msg_bytes=*/1024 * 1024);

  std::printf("posting 4 RDMA Writes (1 MB each) h0 -> h1...\n");
  for (std::uint64_t wr = 1; wr <= 4; ++wr) {
    qp.post(1024 * 1024, /*wr_id=*/wr, RdmaOp::kWrite);
  }

  // A second QP sending in parallel, to show the NIC multiplexing QPs.
  verbs::QueuePair& qp2 = dev.create_qp(star.hosts[2]->id(), star.hosts[1]->id());
  qp2.post(512 * 1024, /*wr_id=*/99, RdmaOp::kSend);

  // --- 5. Run and poll ------------------------------------------------------
  net.run_until_done(seconds(1));

  verbs::WorkCompletion wc;
  while (qp.poll_cq(wc)) {
    std::printf("  CQE: wr_id=%llu  %llu bytes  completed at %.2f us\n",
                static_cast<unsigned long long>(wc.wr_id),
                static_cast<unsigned long long>(wc.bytes), to_us(wc.completed_at));
  }
  while (qp2.poll_cq(wc)) {
    std::printf("  CQE (qp2, Send op): wr_id=%llu  %llu bytes  at %.2f us\n",
                static_cast<unsigned long long>(wc.wr_id),
                static_cast<unsigned long long>(wc.bytes), to_us(wc.completed_at));
  }

  const auto sw = net.total_switch_stats();
  std::printf("\nfabric: forwarded=%llu packets, trimmed=%llu, HO lost=%llu\n",
              static_cast<unsigned long long>(sw.forwarded),
              static_cast<unsigned long long>(sw.trimmed),
              static_cast<unsigned long long>(sw.dropped_ho));
  std::printf("simulated time: %.2f us, events: %llu\n", to_us(sim.now()),
              static_cast<unsigned long long>(sim.events_processed()));
  return 0;
}
