// Config-driven experiment runner: describe an experiment in a small
// key = value file and run it without recompiling.
//
//   ./example_run_config exp1.conf [exp2.conf ...]
//
// Several configs fan out across the sweep pool (DCP_JOBS workers;
// DCP_JOBS=1 forces serial) and their reports print in argument order.
// With no argument, runs a built-in demo configuration and prints the
// recognized keys.  See docs/running-experiments.md and src/harness/config.h.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/config.h"
#include "harness/sweep.h"

int main(int argc, char** argv) {
  using namespace dcp;

  if (argc < 2) {
    const char* demo =
        "# demo: DCP + TIMELY under WebSearch-with-incast on a small CLOS\n"
        "experiment = websearch\n"
        "scheme = dcp\n"
        "with_cc = true\n"
        "cc = timely\n"
        "load = 0.5\n"
        "flows = 300\n"
        "spines = 4\n"
        "leaves = 4\n"
        "hosts_per_leaf = 4\n"
        "incast = true\n"
        "incast_fan_in = 12\n"
        "incast_bytes = 262144\n"
        "max_time_ms = 5000\n";
    std::printf("no config given; running the built-in demo:\n\n%s\n", demo);
    std::string err;
    auto cfg = parse_experiment_config(demo, &err);
    if (!cfg) {
      std::fprintf(stderr, "demo config failed to parse: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s", run_configured_experiment(*cfg).c_str());
    std::printf(
        "\nrecognized keys: experiment scheme with_cc cc load flows seed dist\n"
        "spines leaves hosts_per_leaf leaf_spine_delay_us incast incast_fan_in\n"
        "incast_load incast_bytes loss_rate flow_bytes collective_kind groups\n"
        "members collective_bytes ratio max_time_ms\n");
    return 0;
  }

  // Parse every config up front so a typo in the last file is reported
  // before any simulation time is spent.
  std::vector<ExperimentConfig> cfgs;
  for (int i = 1; i < argc; ++i) {
    std::string err;
    auto cfg = load_experiment_config(argv[i], &err);
    if (!cfg) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    cfgs.push_back(*cfg);
  }

  SweepRunner pool;
  const std::vector<std::string> reports = pool.run(
      cfgs.size(), [&](std::size_t i) { return run_configured_experiment(cfgs[i]); });

  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports.size() > 1) std::printf("==== %s ====\n", argv[i + 1]);
    std::printf("%s", reports[i].c_str());
  }
  return 0;
}
