// AI collective example: run a ring AllReduce across 8 simulated RNICs on
// the 2-switch testbed, once over DCP(+adaptive routing) and once over a
// classic Go-Back-N RNIC(+ECMP), and compare job completion times — the
// workload class the paper's introduction motivates (LLM training).
//
// Build & run:  ./example_ai_collective [total_MB]

#include <cstdio>
#include <cstdlib>

#include "harness/scheme.h"
#include "topo/testbed.h"
#include "workload/collective.h"

using namespace dcp;

namespace {

double run_allreduce(SchemeKind kind, std::uint64_t total_bytes) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);

  SchemeSetup scheme = make_scheme(kind);
  TestbedParams tb;
  tb.sw = scheme.sw;
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, scheme);

  CollectiveParams cp;
  for (int i = 0; i < 8; ++i) {
    // Members alternate between the two switches, so every ring step
    // crosses the parallel core links.
    cp.members.push_back(topo.hosts[static_cast<std::size_t>(i % 2 == 0 ? i / 2 : 8 + i / 2)]->id());
  }
  cp.total_bytes = total_bytes;
  cp.msg_bytes = 1024 * 1024;

  RingAllReduce ar(net, cp);
  net.run_until_done(seconds(20));
  if (!ar.done()) {
    std::printf("  (%s did not finish in the time budget)\n", scheme_name(kind));
    return -1;
  }
  return to_ms(ar.jct());
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t total_mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::uint64_t total = total_mb * 1024 * 1024;

  std::printf("Ring AllReduce, 8 RNICs across 2 switches, %llu MB total\n",
              static_cast<unsigned long long>(total_mb));

  const double gbn = run_allreduce(SchemeKind::kCx5, total);
  const double dcp = run_allreduce(SchemeKind::kDcp, total);

  CollectiveParams ideal_cp;
  ideal_cp.members.resize(8);
  ideal_cp.total_bytes = total;
  const double ideal = to_ms(RingAllReduce::ideal_jct(ideal_cp, Bandwidth::gbps(100)));

  std::printf("\n  RNIC-GBN + ECMP : %8.2f ms\n", gbn);
  std::printf("  DCP      + AR   : %8.2f ms\n", dcp);
  std::printf("  ideal (no net)  : %8.2f ms\n", ideal);
  if (gbn > 0 && dcp > 0) {
    std::printf("\nDCP completes the job %.0f%% faster.\n", (1.0 - dcp / gbn) * 100.0);
  }
  return 0;
}
