// Fault drill example: one long cross-rack flow rides out a link flap and
// a burst of control-queue loss.  Shows how to express a FaultPlan in
// code, run it through the harness, and read the recovery metrics.
//
//   ./example_fault_drill            # DCP (default)
//   ./example_fault_drill irn        # any scheme name from the harness

#include <cstdio>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace dcp;

int main(int argc, char** argv) {
  FaultDrillParams p;
  if (argc > 1) {
    const std::string s = argv[1];
    if (s == "irn") p.scheme = SchemeKind::kIrn;
    else if (s == "gbn" || s == "cx5") p.scheme = SchemeKind::kCx5;
    else if (s == "mprdma") p.scheme = SchemeKind::kMpRdma;
    else if (s != "dcp") {
      std::fprintf(stderr, "unknown scheme '%s' (dcp|irn|gbn|mprdma)\n", s.c_str());
      return 1;
    }
  }

  // The plan: cut spine 0's first downlink for 300us mid-transfer (killing
  // the packets on the wire), then later drop 20% of control-queue packets
  // for 400us — the lossless-CP violation the paper's fallback handles.
  {
    FaultAction flap;
    flap.kind = FaultKind::kLinkFlap;
    flap.at = microseconds(200);
    flap.duration = microseconds(300);
    flap.sw = 0;
    flap.port = 0;
    flap.drop_in_flight = true;
    p.faults.actions.push_back(flap);

    FaultAction ho;
    ho.kind = FaultKind::kHoLoss;
    ho.at = microseconds(800);
    ho.duration = microseconds(400);
    ho.rate = 0.2;
    p.faults.actions.push_back(ho);
  }
  p.flow_bytes = 8ull * 1000 * 1000;

  banner("Fault drill: link flap + control-queue loss");
  std::printf("plan:\n%s\n", p.faults.to_config_text().c_str());

  const FaultDrillResult r = run_fault_drill(p);

  std::printf("scheme %s: goodput %.2f Gbps, completed=%s, elapsed %.1f us\n",
              scheme_name(p.scheme), r.goodput_gbps, r.completed ? "yes" : "no",
              to_us(r.elapsed));
  std::printf("wire: dropped %llu  corrupted %llu  blackholed %llu  in-flight killed %llu\n",
              static_cast<unsigned long long>(r.wire.dropped),
              static_cast<unsigned long long>(r.wire.corrupted),
              static_cast<unsigned long long>(r.wire.blackholed),
              static_cast<unsigned long long>(r.wire.in_flight_dropped));

  Table t(RecoveryStats::table_headers());
  for (const auto& row : RecoveryStats::table_rows(r.fault_episodes)) t.add_row(row);
  t.print();
  return 0;
}
