file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_loss_schemes.dir/bench_fig17_loss_schemes.cpp.o"
  "CMakeFiles/bench_fig17_loss_schemes.dir/bench_fig17_loss_schemes.cpp.o.d"
  "bench_fig17_loss_schemes"
  "bench_fig17_loss_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_loss_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
