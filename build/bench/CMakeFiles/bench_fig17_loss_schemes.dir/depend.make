# Empty dependencies file for bench_fig17_loss_schemes.
# This may be replaced when dependencies are built.
