# Empty dependencies file for bench_micro_datapath.
# This may be replaced when dependencies are built.
