# Empty dependencies file for bench_fig1_spurious_retrans.
# This may be replaced when dependencies are built.
