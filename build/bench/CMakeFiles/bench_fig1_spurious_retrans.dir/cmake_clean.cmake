file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_spurious_retrans.dir/bench_fig1_spurious_retrans.cpp.o"
  "CMakeFiles/bench_fig1_spurious_retrans.dir/bench_fig1_spurious_retrans.cpp.o.d"
  "bench_fig1_spurious_retrans"
  "bench_fig1_spurious_retrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_spurious_retrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
