# Empty compiler generated dependencies file for bench_fig12_ai_testbed.
# This may be replaced when dependencies are built.
