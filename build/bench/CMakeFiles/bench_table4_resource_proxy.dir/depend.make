# Empty dependencies file for bench_table4_resource_proxy.
# This may be replaced when dependencies are built.
