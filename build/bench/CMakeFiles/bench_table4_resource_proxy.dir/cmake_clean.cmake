file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_resource_proxy.dir/bench_table4_resource_proxy.cpp.o"
  "CMakeFiles/bench_table4_resource_proxy.dir/bench_table4_resource_proxy.cpp.o.d"
  "bench_table4_resource_proxy"
  "bench_table4_resource_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_resource_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
