file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ai_sim.dir/bench_fig14_ai_sim.cpp.o"
  "CMakeFiles/bench_fig14_ai_sim.dir/bench_fig14_ai_sim.cpp.o.d"
  "bench_fig14_ai_sim"
  "bench_fig14_ai_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ai_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
