# Empty dependencies file for bench_fig14_ai_sim.
# This may be replaced when dependencies are built.
