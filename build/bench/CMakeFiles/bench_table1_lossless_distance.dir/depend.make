# Empty dependencies file for bench_table1_lossless_distance.
# This may be replaced when dependencies are built.
