file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lossless_distance.dir/bench_table1_lossless_distance.cpp.o"
  "CMakeFiles/bench_table1_lossless_distance.dir/bench_table1_lossless_distance.cpp.o.d"
  "bench_table1_lossless_distance"
  "bench_table1_lossless_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lossless_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
