# Empty dependencies file for bench_ablation_fattree.
# This may be replaced when dependencies are built.
