file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fattree.dir/bench_ablation_fattree.cpp.o"
  "CMakeFiles/bench_ablation_fattree.dir/bench_ablation_fattree.cpp.o.d"
  "bench_ablation_fattree"
  "bench_ablation_fattree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fattree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
