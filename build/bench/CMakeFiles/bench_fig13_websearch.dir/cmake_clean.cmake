file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_websearch.dir/bench_fig13_websearch.cpp.o"
  "CMakeFiles/bench_fig13_websearch.dir/bench_fig13_websearch.cpp.o.d"
  "bench_fig13_websearch"
  "bench_fig13_websearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_websearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
