# Empty dependencies file for bench_fig13_websearch.
# This may be replaced when dependencies are built.
