# Empty compiler generated dependencies file for bench_ablation_cc_schemes.
# This may be replaced when dependencies are built.
