# Empty dependencies file for bench_fig11_ar_unequal_paths.
# This may be replaced when dependencies are built.
