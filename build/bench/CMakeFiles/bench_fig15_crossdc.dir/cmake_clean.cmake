file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_crossdc.dir/bench_fig15_crossdc.cpp.o"
  "CMakeFiles/bench_fig15_crossdc.dir/bench_fig15_crossdc.cpp.o.d"
  "bench_fig15_crossdc"
  "bench_fig15_crossdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_crossdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
