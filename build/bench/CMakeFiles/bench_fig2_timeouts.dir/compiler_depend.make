# Empty compiler generated dependencies file for bench_fig2_timeouts.
# This may be replaced when dependencies are built.
