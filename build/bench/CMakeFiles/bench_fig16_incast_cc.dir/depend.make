# Empty dependencies file for bench_fig16_incast_cc.
# This may be replaced when dependencies are built.
