# Empty compiler generated dependencies file for bench_ablation_lb_policies.
# This may be replaced when dependencies are built.
