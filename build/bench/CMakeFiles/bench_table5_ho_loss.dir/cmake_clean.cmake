file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ho_loss.dir/bench_table5_ho_loss.cpp.o"
  "CMakeFiles/bench_table5_ho_loss.dir/bench_table5_ho_loss.cpp.o.d"
  "bench_table5_ho_loss"
  "bench_table5_ho_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ho_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
