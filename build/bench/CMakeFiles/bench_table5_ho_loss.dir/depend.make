# Empty dependencies file for bench_table5_ho_loss.
# This may be replaced when dependencies are built.
