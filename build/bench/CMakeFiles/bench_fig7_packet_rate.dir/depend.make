# Empty dependencies file for bench_fig7_packet_rate.
# This may be replaced when dependencies are built.
