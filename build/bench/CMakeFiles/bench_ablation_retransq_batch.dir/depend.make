# Empty dependencies file for bench_ablation_retransq_batch.
# This may be replaced when dependencies are built.
