file(REMOVE_RECURSE
  "CMakeFiles/test_lb_policies.dir/test_lb_policies.cpp.o"
  "CMakeFiles/test_lb_policies.dir/test_lb_policies.cpp.o.d"
  "test_lb_policies"
  "test_lb_policies.pdb"
  "test_lb_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
