file(REMOVE_RECURSE
  "CMakeFiles/test_dcp_transport.dir/test_dcp_transport.cpp.o"
  "CMakeFiles/test_dcp_transport.dir/test_dcp_transport.cpp.o.d"
  "test_dcp_transport"
  "test_dcp_transport.pdb"
  "test_dcp_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
