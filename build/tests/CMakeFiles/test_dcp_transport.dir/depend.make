# Empty dependencies file for test_dcp_transport.
# This may be replaced when dependencies are built.
