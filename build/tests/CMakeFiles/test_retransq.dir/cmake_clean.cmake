file(REMOVE_RECURSE
  "CMakeFiles/test_retransq.dir/test_retransq.cpp.o"
  "CMakeFiles/test_retransq.dir/test_retransq.cpp.o.d"
  "test_retransq"
  "test_retransq.pdb"
  "test_retransq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retransq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
