# Empty compiler generated dependencies file for test_retransq.
# This may be replaced when dependencies are built.
