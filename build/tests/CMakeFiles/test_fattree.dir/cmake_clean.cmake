file(REMOVE_RECURSE
  "CMakeFiles/test_fattree.dir/test_fattree.cpp.o"
  "CMakeFiles/test_fattree.dir/test_fattree.cpp.o.d"
  "test_fattree"
  "test_fattree.pdb"
  "test_fattree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fattree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
