# Empty dependencies file for test_dcp_credit.
# This may be replaced when dependencies are built.
