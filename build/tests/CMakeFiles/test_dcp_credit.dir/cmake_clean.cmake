file(REMOVE_RECURSE
  "CMakeFiles/test_dcp_credit.dir/test_dcp_credit.cpp.o"
  "CMakeFiles/test_dcp_credit.dir/test_dcp_credit.cpp.o.d"
  "test_dcp_credit"
  "test_dcp_credit.pdb"
  "test_dcp_credit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcp_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
