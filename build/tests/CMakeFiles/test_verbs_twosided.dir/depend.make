# Empty dependencies file for test_verbs_twosided.
# This may be replaced when dependencies are built.
