file(REMOVE_RECURSE
  "CMakeFiles/test_verbs_twosided.dir/test_verbs_twosided.cpp.o"
  "CMakeFiles/test_verbs_twosided.dir/test_verbs_twosided.cpp.o.d"
  "test_verbs_twosided"
  "test_verbs_twosided.pdb"
  "test_verbs_twosided[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verbs_twosided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
