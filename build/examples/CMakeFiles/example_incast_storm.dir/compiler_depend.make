# Empty compiler generated dependencies file for example_incast_storm.
# This may be replaced when dependencies are built.
