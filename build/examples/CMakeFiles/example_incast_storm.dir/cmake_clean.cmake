file(REMOVE_RECURSE
  "CMakeFiles/example_incast_storm.dir/incast_storm.cpp.o"
  "CMakeFiles/example_incast_storm.dir/incast_storm.cpp.o.d"
  "example_incast_storm"
  "example_incast_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incast_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
