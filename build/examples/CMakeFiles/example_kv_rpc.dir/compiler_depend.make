# Empty compiler generated dependencies file for example_kv_rpc.
# This may be replaced when dependencies are built.
