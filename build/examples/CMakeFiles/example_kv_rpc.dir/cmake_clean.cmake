file(REMOVE_RECURSE
  "CMakeFiles/example_kv_rpc.dir/kv_rpc.cpp.o"
  "CMakeFiles/example_kv_rpc.dir/kv_rpc.cpp.o.d"
  "example_kv_rpc"
  "example_kv_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kv_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
