# Empty compiler generated dependencies file for example_run_config.
# This may be replaced when dependencies are built.
