file(REMOVE_RECURSE
  "CMakeFiles/example_run_config.dir/run_config.cpp.o"
  "CMakeFiles/example_run_config.dir/run_config.cpp.o.d"
  "example_run_config"
  "example_run_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_run_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
