# Empty dependencies file for example_cross_dc_replication.
# This may be replaced when dependencies are built.
