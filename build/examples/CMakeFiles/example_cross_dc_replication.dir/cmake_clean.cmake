file(REMOVE_RECURSE
  "CMakeFiles/example_cross_dc_replication.dir/cross_dc_replication.cpp.o"
  "CMakeFiles/example_cross_dc_replication.dir/cross_dc_replication.cpp.o.d"
  "example_cross_dc_replication"
  "example_cross_dc_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cross_dc_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
