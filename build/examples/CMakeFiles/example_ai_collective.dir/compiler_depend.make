# Empty compiler generated dependencies file for example_ai_collective.
# This may be replaced when dependencies are built.
