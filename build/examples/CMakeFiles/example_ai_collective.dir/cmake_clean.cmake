file(REMOVE_RECURSE
  "CMakeFiles/example_ai_collective.dir/ai_collective.cpp.o"
  "CMakeFiles/example_ai_collective.dir/ai_collective.cpp.o.d"
  "example_ai_collective"
  "example_ai_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ai_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
