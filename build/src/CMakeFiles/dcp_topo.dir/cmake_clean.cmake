file(REMOVE_RECURSE
  "CMakeFiles/dcp_topo.dir/topo/clos.cpp.o"
  "CMakeFiles/dcp_topo.dir/topo/clos.cpp.o.d"
  "CMakeFiles/dcp_topo.dir/topo/dumbbell.cpp.o"
  "CMakeFiles/dcp_topo.dir/topo/dumbbell.cpp.o.d"
  "CMakeFiles/dcp_topo.dir/topo/fattree.cpp.o"
  "CMakeFiles/dcp_topo.dir/topo/fattree.cpp.o.d"
  "CMakeFiles/dcp_topo.dir/topo/network.cpp.o"
  "CMakeFiles/dcp_topo.dir/topo/network.cpp.o.d"
  "CMakeFiles/dcp_topo.dir/topo/testbed.cpp.o"
  "CMakeFiles/dcp_topo.dir/topo/testbed.cpp.o.d"
  "libdcp_topo.a"
  "libdcp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
