file(REMOVE_RECURSE
  "libdcp_topo.a"
)
