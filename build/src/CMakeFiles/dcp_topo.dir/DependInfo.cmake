
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/clos.cpp" "src/CMakeFiles/dcp_topo.dir/topo/clos.cpp.o" "gcc" "src/CMakeFiles/dcp_topo.dir/topo/clos.cpp.o.d"
  "/root/repo/src/topo/dumbbell.cpp" "src/CMakeFiles/dcp_topo.dir/topo/dumbbell.cpp.o" "gcc" "src/CMakeFiles/dcp_topo.dir/topo/dumbbell.cpp.o.d"
  "/root/repo/src/topo/fattree.cpp" "src/CMakeFiles/dcp_topo.dir/topo/fattree.cpp.o" "gcc" "src/CMakeFiles/dcp_topo.dir/topo/fattree.cpp.o.d"
  "/root/repo/src/topo/network.cpp" "src/CMakeFiles/dcp_topo.dir/topo/network.cpp.o" "gcc" "src/CMakeFiles/dcp_topo.dir/topo/network.cpp.o.d"
  "/root/repo/src/topo/testbed.cpp" "src/CMakeFiles/dcp_topo.dir/topo/testbed.cpp.o" "gcc" "src/CMakeFiles/dcp_topo.dir/topo/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
