# Empty dependencies file for dcp_topo.
# This may be replaced when dependencies are built.
