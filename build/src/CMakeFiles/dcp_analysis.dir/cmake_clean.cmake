file(REMOVE_RECURSE
  "CMakeFiles/dcp_analysis.dir/analysis/feature_matrix.cpp.o"
  "CMakeFiles/dcp_analysis.dir/analysis/feature_matrix.cpp.o.d"
  "CMakeFiles/dcp_analysis.dir/analysis/lossless_distance.cpp.o"
  "CMakeFiles/dcp_analysis.dir/analysis/lossless_distance.cpp.o.d"
  "CMakeFiles/dcp_analysis.dir/analysis/memory_model.cpp.o"
  "CMakeFiles/dcp_analysis.dir/analysis/memory_model.cpp.o.d"
  "CMakeFiles/dcp_analysis.dir/analysis/packet_rate_model.cpp.o"
  "CMakeFiles/dcp_analysis.dir/analysis/packet_rate_model.cpp.o.d"
  "CMakeFiles/dcp_analysis.dir/analysis/resource_proxy.cpp.o"
  "CMakeFiles/dcp_analysis.dir/analysis/resource_proxy.cpp.o.d"
  "libdcp_analysis.a"
  "libdcp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
