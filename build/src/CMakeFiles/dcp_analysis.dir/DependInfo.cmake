
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/feature_matrix.cpp" "src/CMakeFiles/dcp_analysis.dir/analysis/feature_matrix.cpp.o" "gcc" "src/CMakeFiles/dcp_analysis.dir/analysis/feature_matrix.cpp.o.d"
  "/root/repo/src/analysis/lossless_distance.cpp" "src/CMakeFiles/dcp_analysis.dir/analysis/lossless_distance.cpp.o" "gcc" "src/CMakeFiles/dcp_analysis.dir/analysis/lossless_distance.cpp.o.d"
  "/root/repo/src/analysis/memory_model.cpp" "src/CMakeFiles/dcp_analysis.dir/analysis/memory_model.cpp.o" "gcc" "src/CMakeFiles/dcp_analysis.dir/analysis/memory_model.cpp.o.d"
  "/root/repo/src/analysis/packet_rate_model.cpp" "src/CMakeFiles/dcp_analysis.dir/analysis/packet_rate_model.cpp.o" "gcc" "src/CMakeFiles/dcp_analysis.dir/analysis/packet_rate_model.cpp.o.d"
  "/root/repo/src/analysis/resource_proxy.cpp" "src/CMakeFiles/dcp_analysis.dir/analysis/resource_proxy.cpp.o" "gcc" "src/CMakeFiles/dcp_analysis.dir/analysis/resource_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_transports.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
