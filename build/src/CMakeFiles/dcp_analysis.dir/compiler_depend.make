# Empty compiler generated dependencies file for dcp_analysis.
# This may be replaced when dependencies are built.
