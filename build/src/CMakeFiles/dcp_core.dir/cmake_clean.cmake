file(REMOVE_RECURSE
  "CMakeFiles/dcp_core.dir/core/dcp_receiver.cpp.o"
  "CMakeFiles/dcp_core.dir/core/dcp_receiver.cpp.o.d"
  "CMakeFiles/dcp_core.dir/core/dcp_sender.cpp.o"
  "CMakeFiles/dcp_core.dir/core/dcp_sender.cpp.o.d"
  "CMakeFiles/dcp_core.dir/core/dcp_transport.cpp.o"
  "CMakeFiles/dcp_core.dir/core/dcp_transport.cpp.o.d"
  "CMakeFiles/dcp_core.dir/core/retransq.cpp.o"
  "CMakeFiles/dcp_core.dir/core/retransq.cpp.o.d"
  "CMakeFiles/dcp_core.dir/core/tracking.cpp.o"
  "CMakeFiles/dcp_core.dir/core/tracking.cpp.o.d"
  "CMakeFiles/dcp_core.dir/core/verbs.cpp.o"
  "CMakeFiles/dcp_core.dir/core/verbs.cpp.o.d"
  "libdcp_core.a"
  "libdcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
