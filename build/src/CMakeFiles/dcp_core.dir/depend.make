# Empty dependencies file for dcp_core.
# This may be replaced when dependencies are built.
