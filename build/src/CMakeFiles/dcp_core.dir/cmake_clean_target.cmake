file(REMOVE_RECURSE
  "libdcp_core.a"
)
