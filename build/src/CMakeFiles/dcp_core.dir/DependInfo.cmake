
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dcp_receiver.cpp" "src/CMakeFiles/dcp_core.dir/core/dcp_receiver.cpp.o" "gcc" "src/CMakeFiles/dcp_core.dir/core/dcp_receiver.cpp.o.d"
  "/root/repo/src/core/dcp_sender.cpp" "src/CMakeFiles/dcp_core.dir/core/dcp_sender.cpp.o" "gcc" "src/CMakeFiles/dcp_core.dir/core/dcp_sender.cpp.o.d"
  "/root/repo/src/core/dcp_transport.cpp" "src/CMakeFiles/dcp_core.dir/core/dcp_transport.cpp.o" "gcc" "src/CMakeFiles/dcp_core.dir/core/dcp_transport.cpp.o.d"
  "/root/repo/src/core/retransq.cpp" "src/CMakeFiles/dcp_core.dir/core/retransq.cpp.o" "gcc" "src/CMakeFiles/dcp_core.dir/core/retransq.cpp.o.d"
  "/root/repo/src/core/tracking.cpp" "src/CMakeFiles/dcp_core.dir/core/tracking.cpp.o" "gcc" "src/CMakeFiles/dcp_core.dir/core/tracking.cpp.o.d"
  "/root/repo/src/core/verbs.cpp" "src/CMakeFiles/dcp_core.dir/core/verbs.cpp.o" "gcc" "src/CMakeFiles/dcp_core.dir/core/verbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
