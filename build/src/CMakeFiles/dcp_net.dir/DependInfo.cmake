
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/dcp_net.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/dcp_net.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/dcp_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/dcp_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/port.cpp" "src/CMakeFiles/dcp_net.dir/net/port.cpp.o" "gcc" "src/CMakeFiles/dcp_net.dir/net/port.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/dcp_net.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/dcp_net.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "src/CMakeFiles/dcp_net.dir/net/wire.cpp.o" "gcc" "src/CMakeFiles/dcp_net.dir/net/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
