file(REMOVE_RECURSE
  "CMakeFiles/dcp_net.dir/net/channel.cpp.o"
  "CMakeFiles/dcp_net.dir/net/channel.cpp.o.d"
  "CMakeFiles/dcp_net.dir/net/packet.cpp.o"
  "CMakeFiles/dcp_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/dcp_net.dir/net/port.cpp.o"
  "CMakeFiles/dcp_net.dir/net/port.cpp.o.d"
  "CMakeFiles/dcp_net.dir/net/queue.cpp.o"
  "CMakeFiles/dcp_net.dir/net/queue.cpp.o.d"
  "CMakeFiles/dcp_net.dir/net/wire.cpp.o"
  "CMakeFiles/dcp_net.dir/net/wire.cpp.o.d"
  "libdcp_net.a"
  "libdcp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
