file(REMOVE_RECURSE
  "libdcp_sim.a"
)
