file(REMOVE_RECURSE
  "CMakeFiles/dcp_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/dcp_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/dcp_sim.dir/sim/logger.cpp.o"
  "CMakeFiles/dcp_sim.dir/sim/logger.cpp.o.d"
  "CMakeFiles/dcp_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/dcp_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/dcp_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/dcp_sim.dir/sim/simulator.cpp.o.d"
  "libdcp_sim.a"
  "libdcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
