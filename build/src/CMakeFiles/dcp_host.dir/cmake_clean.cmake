file(REMOVE_RECURSE
  "CMakeFiles/dcp_host.dir/host/host.cpp.o"
  "CMakeFiles/dcp_host.dir/host/host.cpp.o.d"
  "CMakeFiles/dcp_host.dir/host/rnic_scheduler.cpp.o"
  "CMakeFiles/dcp_host.dir/host/rnic_scheduler.cpp.o.d"
  "CMakeFiles/dcp_host.dir/host/transport.cpp.o"
  "CMakeFiles/dcp_host.dir/host/transport.cpp.o.d"
  "libdcp_host.a"
  "libdcp_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
