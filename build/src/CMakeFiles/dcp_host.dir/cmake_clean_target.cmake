file(REMOVE_RECURSE
  "libdcp_host.a"
)
