# Empty dependencies file for dcp_host.
# This may be replaced when dependencies are built.
