
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host.cpp" "src/CMakeFiles/dcp_host.dir/host/host.cpp.o" "gcc" "src/CMakeFiles/dcp_host.dir/host/host.cpp.o.d"
  "/root/repo/src/host/rnic_scheduler.cpp" "src/CMakeFiles/dcp_host.dir/host/rnic_scheduler.cpp.o" "gcc" "src/CMakeFiles/dcp_host.dir/host/rnic_scheduler.cpp.o.d"
  "/root/repo/src/host/transport.cpp" "src/CMakeFiles/dcp_host.dir/host/transport.cpp.o" "gcc" "src/CMakeFiles/dcp_host.dir/host/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
