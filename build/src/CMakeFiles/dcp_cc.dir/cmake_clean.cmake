file(REMOVE_RECURSE
  "CMakeFiles/dcp_cc.dir/cc/cc.cpp.o"
  "CMakeFiles/dcp_cc.dir/cc/cc.cpp.o.d"
  "CMakeFiles/dcp_cc.dir/cc/dcqcn.cpp.o"
  "CMakeFiles/dcp_cc.dir/cc/dcqcn.cpp.o.d"
  "CMakeFiles/dcp_cc.dir/cc/timely.cpp.o"
  "CMakeFiles/dcp_cc.dir/cc/timely.cpp.o.d"
  "CMakeFiles/dcp_cc.dir/cc/window_cc.cpp.o"
  "CMakeFiles/dcp_cc.dir/cc/window_cc.cpp.o.d"
  "libdcp_cc.a"
  "libdcp_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
