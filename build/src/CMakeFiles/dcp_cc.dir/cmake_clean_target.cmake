file(REMOVE_RECURSE
  "libdcp_cc.a"
)
