
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/cc.cpp" "src/CMakeFiles/dcp_cc.dir/cc/cc.cpp.o" "gcc" "src/CMakeFiles/dcp_cc.dir/cc/cc.cpp.o.d"
  "/root/repo/src/cc/dcqcn.cpp" "src/CMakeFiles/dcp_cc.dir/cc/dcqcn.cpp.o" "gcc" "src/CMakeFiles/dcp_cc.dir/cc/dcqcn.cpp.o.d"
  "/root/repo/src/cc/timely.cpp" "src/CMakeFiles/dcp_cc.dir/cc/timely.cpp.o" "gcc" "src/CMakeFiles/dcp_cc.dir/cc/timely.cpp.o.d"
  "/root/repo/src/cc/window_cc.cpp" "src/CMakeFiles/dcp_cc.dir/cc/window_cc.cpp.o" "gcc" "src/CMakeFiles/dcp_cc.dir/cc/window_cc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
