# Empty dependencies file for dcp_cc.
# This may be replaced when dependencies are built.
