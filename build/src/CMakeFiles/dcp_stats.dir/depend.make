# Empty dependencies file for dcp_stats.
# This may be replaced when dependencies are built.
