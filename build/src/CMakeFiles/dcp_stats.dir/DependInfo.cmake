
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/csv_export.cpp" "src/CMakeFiles/dcp_stats.dir/stats/csv_export.cpp.o" "gcc" "src/CMakeFiles/dcp_stats.dir/stats/csv_export.cpp.o.d"
  "/root/repo/src/stats/fct_stats.cpp" "src/CMakeFiles/dcp_stats.dir/stats/fct_stats.cpp.o" "gcc" "src/CMakeFiles/dcp_stats.dir/stats/fct_stats.cpp.o.d"
  "/root/repo/src/stats/goodput.cpp" "src/CMakeFiles/dcp_stats.dir/stats/goodput.cpp.o" "gcc" "src/CMakeFiles/dcp_stats.dir/stats/goodput.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/CMakeFiles/dcp_stats.dir/stats/percentile.cpp.o" "gcc" "src/CMakeFiles/dcp_stats.dir/stats/percentile.cpp.o.d"
  "/root/repo/src/stats/telemetry.cpp" "src/CMakeFiles/dcp_stats.dir/stats/telemetry.cpp.o" "gcc" "src/CMakeFiles/dcp_stats.dir/stats/telemetry.cpp.o.d"
  "/root/repo/src/stats/trace.cpp" "src/CMakeFiles/dcp_stats.dir/stats/trace.cpp.o" "gcc" "src/CMakeFiles/dcp_stats.dir/stats/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
