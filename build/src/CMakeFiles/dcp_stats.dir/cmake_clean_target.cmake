file(REMOVE_RECURSE
  "libdcp_stats.a"
)
