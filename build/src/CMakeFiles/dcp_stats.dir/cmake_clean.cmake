file(REMOVE_RECURSE
  "CMakeFiles/dcp_stats.dir/stats/csv_export.cpp.o"
  "CMakeFiles/dcp_stats.dir/stats/csv_export.cpp.o.d"
  "CMakeFiles/dcp_stats.dir/stats/fct_stats.cpp.o"
  "CMakeFiles/dcp_stats.dir/stats/fct_stats.cpp.o.d"
  "CMakeFiles/dcp_stats.dir/stats/goodput.cpp.o"
  "CMakeFiles/dcp_stats.dir/stats/goodput.cpp.o.d"
  "CMakeFiles/dcp_stats.dir/stats/percentile.cpp.o"
  "CMakeFiles/dcp_stats.dir/stats/percentile.cpp.o.d"
  "CMakeFiles/dcp_stats.dir/stats/telemetry.cpp.o"
  "CMakeFiles/dcp_stats.dir/stats/telemetry.cpp.o.d"
  "CMakeFiles/dcp_stats.dir/stats/trace.cpp.o"
  "CMakeFiles/dcp_stats.dir/stats/trace.cpp.o.d"
  "libdcp_stats.a"
  "libdcp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
