file(REMOVE_RECURSE
  "libdcp_workload.a"
)
