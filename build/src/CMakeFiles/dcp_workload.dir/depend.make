# Empty dependencies file for dcp_workload.
# This may be replaced when dependencies are built.
