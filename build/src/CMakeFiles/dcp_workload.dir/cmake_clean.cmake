file(REMOVE_RECURSE
  "CMakeFiles/dcp_workload.dir/workload/collective.cpp.o"
  "CMakeFiles/dcp_workload.dir/workload/collective.cpp.o.d"
  "CMakeFiles/dcp_workload.dir/workload/flowgen.cpp.o"
  "CMakeFiles/dcp_workload.dir/workload/flowgen.cpp.o.d"
  "CMakeFiles/dcp_workload.dir/workload/incast.cpp.o"
  "CMakeFiles/dcp_workload.dir/workload/incast.cpp.o.d"
  "CMakeFiles/dcp_workload.dir/workload/size_dist.cpp.o"
  "CMakeFiles/dcp_workload.dir/workload/size_dist.cpp.o.d"
  "libdcp_workload.a"
  "libdcp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
