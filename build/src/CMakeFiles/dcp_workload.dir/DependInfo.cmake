
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/collective.cpp" "src/CMakeFiles/dcp_workload.dir/workload/collective.cpp.o" "gcc" "src/CMakeFiles/dcp_workload.dir/workload/collective.cpp.o.d"
  "/root/repo/src/workload/flowgen.cpp" "src/CMakeFiles/dcp_workload.dir/workload/flowgen.cpp.o" "gcc" "src/CMakeFiles/dcp_workload.dir/workload/flowgen.cpp.o.d"
  "/root/repo/src/workload/incast.cpp" "src/CMakeFiles/dcp_workload.dir/workload/incast.cpp.o" "gcc" "src/CMakeFiles/dcp_workload.dir/workload/incast.cpp.o.d"
  "/root/repo/src/workload/size_dist.cpp" "src/CMakeFiles/dcp_workload.dir/workload/size_dist.cpp.o" "gcc" "src/CMakeFiles/dcp_workload.dir/workload/size_dist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
