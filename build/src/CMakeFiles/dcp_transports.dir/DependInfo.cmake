
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transports/gbn.cpp" "src/CMakeFiles/dcp_transports.dir/transports/gbn.cpp.o" "gcc" "src/CMakeFiles/dcp_transports.dir/transports/gbn.cpp.o.d"
  "/root/repo/src/transports/irn.cpp" "src/CMakeFiles/dcp_transports.dir/transports/irn.cpp.o" "gcc" "src/CMakeFiles/dcp_transports.dir/transports/irn.cpp.o.d"
  "/root/repo/src/transports/mprdma.cpp" "src/CMakeFiles/dcp_transports.dir/transports/mprdma.cpp.o" "gcc" "src/CMakeFiles/dcp_transports.dir/transports/mprdma.cpp.o.d"
  "/root/repo/src/transports/racktlp.cpp" "src/CMakeFiles/dcp_transports.dir/transports/racktlp.cpp.o" "gcc" "src/CMakeFiles/dcp_transports.dir/transports/racktlp.cpp.o.d"
  "/root/repo/src/transports/tcp_lite.cpp" "src/CMakeFiles/dcp_transports.dir/transports/tcp_lite.cpp.o" "gcc" "src/CMakeFiles/dcp_transports.dir/transports/tcp_lite.cpp.o.d"
  "/root/repo/src/transports/timeout.cpp" "src/CMakeFiles/dcp_transports.dir/transports/timeout.cpp.o" "gcc" "src/CMakeFiles/dcp_transports.dir/transports/timeout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
