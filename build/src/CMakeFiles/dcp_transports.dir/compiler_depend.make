# Empty compiler generated dependencies file for dcp_transports.
# This may be replaced when dependencies are built.
