file(REMOVE_RECURSE
  "libdcp_transports.a"
)
