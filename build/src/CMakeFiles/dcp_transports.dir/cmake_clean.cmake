file(REMOVE_RECURSE
  "CMakeFiles/dcp_transports.dir/transports/gbn.cpp.o"
  "CMakeFiles/dcp_transports.dir/transports/gbn.cpp.o.d"
  "CMakeFiles/dcp_transports.dir/transports/irn.cpp.o"
  "CMakeFiles/dcp_transports.dir/transports/irn.cpp.o.d"
  "CMakeFiles/dcp_transports.dir/transports/mprdma.cpp.o"
  "CMakeFiles/dcp_transports.dir/transports/mprdma.cpp.o.d"
  "CMakeFiles/dcp_transports.dir/transports/racktlp.cpp.o"
  "CMakeFiles/dcp_transports.dir/transports/racktlp.cpp.o.d"
  "CMakeFiles/dcp_transports.dir/transports/tcp_lite.cpp.o"
  "CMakeFiles/dcp_transports.dir/transports/tcp_lite.cpp.o.d"
  "CMakeFiles/dcp_transports.dir/transports/timeout.cpp.o"
  "CMakeFiles/dcp_transports.dir/transports/timeout.cpp.o.d"
  "libdcp_transports.a"
  "libdcp_transports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_transports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
