file(REMOVE_RECURSE
  "libdcp_harness.a"
)
