file(REMOVE_RECURSE
  "CMakeFiles/dcp_harness.dir/harness/config.cpp.o"
  "CMakeFiles/dcp_harness.dir/harness/config.cpp.o.d"
  "CMakeFiles/dcp_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/dcp_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/dcp_harness.dir/harness/report.cpp.o"
  "CMakeFiles/dcp_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/dcp_harness.dir/harness/scheme.cpp.o"
  "CMakeFiles/dcp_harness.dir/harness/scheme.cpp.o.d"
  "libdcp_harness.a"
  "libdcp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
