file(REMOVE_RECURSE
  "libdcp_switch.a"
)
