# Empty compiler generated dependencies file for dcp_switch.
# This may be replaced when dependencies are built.
