
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switch/buffer.cpp" "src/CMakeFiles/dcp_switch.dir/switch/buffer.cpp.o" "gcc" "src/CMakeFiles/dcp_switch.dir/switch/buffer.cpp.o.d"
  "/root/repo/src/switch/routing.cpp" "src/CMakeFiles/dcp_switch.dir/switch/routing.cpp.o" "gcc" "src/CMakeFiles/dcp_switch.dir/switch/routing.cpp.o.d"
  "/root/repo/src/switch/scheduler.cpp" "src/CMakeFiles/dcp_switch.dir/switch/scheduler.cpp.o" "gcc" "src/CMakeFiles/dcp_switch.dir/switch/scheduler.cpp.o.d"
  "/root/repo/src/switch/switch.cpp" "src/CMakeFiles/dcp_switch.dir/switch/switch.cpp.o" "gcc" "src/CMakeFiles/dcp_switch.dir/switch/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
