file(REMOVE_RECURSE
  "CMakeFiles/dcp_switch.dir/switch/buffer.cpp.o"
  "CMakeFiles/dcp_switch.dir/switch/buffer.cpp.o.d"
  "CMakeFiles/dcp_switch.dir/switch/routing.cpp.o"
  "CMakeFiles/dcp_switch.dir/switch/routing.cpp.o.d"
  "CMakeFiles/dcp_switch.dir/switch/scheduler.cpp.o"
  "CMakeFiles/dcp_switch.dir/switch/scheduler.cpp.o.d"
  "CMakeFiles/dcp_switch.dir/switch/switch.cpp.o"
  "CMakeFiles/dcp_switch.dir/switch/switch.cpp.o.d"
  "libdcp_switch.a"
  "libdcp_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
