// Fig. 10: loss recovery efficiency — goodput of a long-running cross-
// switch flow while switch 1 force-drops (CX5) or force-trims (DCP) data
// packets at rates from 0.01% to 5%.  The rate x scheme matrix fans out
// across the sweep pool (DCP_JOBS); results are indexed by trial, so the
// table is bit-identical to the old serial loop.

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

int main() {
  banner("Fig 10: goodput vs forced loss rate (testbed, long flow)");

  const double rates[] = {0.0, 0.0001, 0.001, 0.005, 0.01, 0.02, 0.05};
  const SchemeKind kinds[] = {SchemeKind::kCx5, SchemeKind::kDcp};

  struct Trial {
    double rate;
    SchemeKind k;
  };
  std::vector<Trial> trials;
  for (double rate : rates) {
    for (SchemeKind k : kinds) trials.push_back({rate, k});
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<double> goodput = pool.run(trials.size(), [&](std::size_t i) {
    LongFlowParams p;
    p.scheme = trials[i].k;
    p.loss_rate = trials[i].rate;
    p.flow_bytes = full_scale() ? 100ull * 1000 * 1000 : 20ull * 1000 * 1000;
    p.max_time = milliseconds(full_scale() ? 500 : 100);
    const LongFlowResult r = run_long_flow(p);
    agg.add(r.core);
    return r.goodput_gbps;
  });

  Table t({"Loss rate", "CX5 (Gbps)", "DCP (Gbps)", "DCP/CX5"});
  for (std::size_t r = 0; r < std::size(rates); ++r) {
    const double cx5 = goodput[2 * r];
    const double dcp = goodput[2 * r + 1];
    char lbl[32];
    std::snprintf(lbl, sizeof(lbl), "%.2f%%", rates[r] * 100);
    t.add_row({lbl, Table::num(cx5, 2), Table::num(dcp, 2),
               cx5 > 0 ? Table::num(dcp / cx5, 1) + "x" : "-"});
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nPaper shape: DCP holds near line rate across the sweep; CX5 (GBN)\n"
              "collapses as loss grows — 1.6x at 0.01%% up to ~72x at 5%%.\n");
  return 0;
}
