// Fig. 10: loss recovery efficiency — goodput of a long-running cross-
// switch flow while switch 1 force-drops (CX5) or force-trims (DCP) data
// packets at rates from 0.01% to 5%.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace dcp;

int main() {
  banner("Fig 10: goodput vs forced loss rate (testbed, long flow)");

  const double rates[] = {0.0, 0.0001, 0.001, 0.005, 0.01, 0.02, 0.05};
  Table t({"Loss rate", "CX5 (Gbps)", "DCP (Gbps)", "DCP/CX5"});
  for (double rate : rates) {
    LongFlowParams p;
    p.flow_bytes = full_scale() ? 100ull * 1000 * 1000 : 20ull * 1000 * 1000;
    p.loss_rate = rate;
    p.max_time = milliseconds(full_scale() ? 500 : 100);

    p.scheme = SchemeKind::kCx5;
    const double cx5 = run_long_flow(p).goodput_gbps;
    p.scheme = SchemeKind::kDcp;
    const double dcp = run_long_flow(p).goodput_gbps;

    char lbl[32];
    std::snprintf(lbl, sizeof(lbl), "%.2f%%", rate * 100);
    t.add_row({lbl, Table::num(cx5, 2), Table::num(dcp, 2),
               cx5 > 0 ? Table::num(dcp / cx5, 1) + "x" : "-"});
  }
  t.print();

  std::printf("\nPaper shape: DCP holds near line rate across the sweep; CX5 (GBN)\n"
              "collapses as loss grows — 1.6x at 0.01%% up to ~72x at 5%%.\n");
  return 0;
}
