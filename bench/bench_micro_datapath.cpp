// Microbenchmarks (google-benchmark) of the hot datapath structures: the
// three packet trackers, the retransmission queue, the event queue, and
// DWRR selection.  These quantify the software cost behind Fig. 7 /
// Table 3 on the host CPU (the simulator substrate's own speed).

#include <benchmark/benchmark.h>

#include "core/retransq.h"
#include "core/tracking.h"
#include "net/packet_pool.h"
#include "sim/event_queue.h"
#include "switch/scheduler.h"

namespace {

using namespace dcp;

void BM_BdpBitmapTracker(benchmark::State& state) {
  BdpBitmapTracker t(4096);
  std::uint32_t psn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.on_packet(psn % 4096));
    ++psn;
  }
}
BENCHMARK(BM_BdpBitmapTracker);

void BM_LinkedChunkTracker(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  LinkedChunkTracker t(1 << 20);
  std::uint32_t head = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.on_packet(head + degree));
    ++head;
    t.advance_head(head);
  }
  state.SetLabel("ooo_degree=" + std::to_string(degree));
}
BENCHMARK(BM_LinkedChunkTracker)->Arg(0)->Arg(128)->Arg(448);

void BM_MessageCounterTracker(benchmark::State& state) {
  MessageCounterTracker t(std::vector<std::uint32_t>(1u << 16, 1u << 14), 8);
  std::uint32_t psn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.on_packet(psn % (1u << 14)));
    ++psn;
  }
}
BENCHMARK(BM_MessageCounterTracker);

void BM_RetransQPushFetchPop(benchmark::State& state) {
  RetransQ q;
  std::uint32_t i = 0;
  for (auto _ : state) {
    q.push({0, i++});
    if (q.len() >= 16) {
      q.fetch_to_staging(16);
      while (!q.staging_empty()) benchmark::DoNotOptimize(q.pop_staged());
    }
  }
}
BENCHMARK(BM_RetransQPushFetchPop);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  Time now = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    q.push(++t, [] {});
    if (q.size() >= 1024) q.pop_and_run(now);
  }
}
BENCHMARK(BM_EventQueuePushPop);

// The timeout pattern: nearly every scheduled event is cancelled before it
// fires (retransmission timers on a healthy fabric).  Exercises the
// in-place O(log n) removal path.
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  EventQueue q;
  Time now = 0;
  std::int64_t t = 0;
  std::vector<EventId> pending;
  pending.reserve(1024);
  std::size_t next_victim = 0;
  for (auto _ : state) {
    pending.push_back(q.push(++t, [] {}));
    if (pending.size() >= 1024) {
      // Cancel from the middle of the window (oldest ids already fired).
      q.cancel(pending[next_victim]);
      next_victim = (next_victim + 7) % pending.size();
      q.pop_and_run(now);
      if (pending.size() >= 4096) {
        pending.clear();
        next_victim = 0;
      }
    }
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

// Pooled packet churn: acquire, fill, move, release — the per-hop cost of
// the PacketPtr datapath vs copying ~130-byte Packets by value.
void BM_PacketPool(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    PacketPtr p = PacketPtr::make();
    p->wire_bytes = 1000 + (i & 63);
    p->psn = i++;
    PacketPtr moved = std::move(p);
    benchmark::DoNotOptimize(moved->psn);
  }
}
BENCHMARK(BM_PacketPool);

void BM_DwrrSelect(benchmark::State& state) {
  DwrrPolicy policy({1.0, 4.0});
  std::vector<FifoQueue> queues(kNumQueueClasses);
  Packet p;
  p.wire_bytes = 1000;
  for (int i = 0; i < 64; ++i) {
    queues[0].push(p);
    queues[1].push(p);
  }
  std::array<bool, kNumQueueClasses> paused{};
  for (auto _ : state) {
    const int c = policy.select(queues, paused);
    benchmark::DoNotOptimize(c);
    policy.charge(c, 1000);
    PacketPtr popped = queues[static_cast<std::size_t>(c)].pop();
    queues[static_cast<std::size_t>(c)].push(std::move(popped));
  }
}
BENCHMARK(BM_DwrrSelect);

}  // namespace

BENCHMARK_MAIN();
