// Table 2: comparison of DCP and closely related works against the four
// design requirements R1-R4.  The rows are derived from properties of the
// transports implemented in this repository (plus the two software schemes
// the paper cites for context).

#include <cstdio>

#include "analysis/feature_matrix.h"
#include "harness/report.h"

int main() {
  using namespace dcp;
  banner("Table 2: DCP vs closely related works (R1-R4)");

  auto mark = [](bool b) { return b ? std::string("yes") : std::string("x"); };
  Table t({"Scheme", "R1 no-PFC", "R2 pkt-level LB", "R3 fast retx (any loss)",
           "R4 HW-friendly"});
  for (const SchemeFeatures& s : feature_matrix()) {
    t.add_row({s.name, mark(s.r1_no_pfc), mark(s.r2_packet_level_lb), mark(s.r3_fast_retx_any),
               mark(s.r4_hw_friendly)});
  }
  t.print();

  std::printf("\nR1: independence from PFC.  R2: compatibility with packet-level load\n"
              "balancing.  R3: fast retransmission for any lost packet (no RTO).\n"
              "R4: hardware-oriented (low memory/processing).  Only DCP meets all four.\n");
  return 0;
}
