// Fig. 15: cross-DC scenarios — leaf-spine propagation raised to 500 us
// (100 km) and 5 ms (1000 km).  Lossless schemes (PFC, MP-RDMA) get their
// buffers enlarged to cover the PFC headroom (600 MB / 6 GB in the paper);
// IRN and DCP keep the 32 MB buffer.  Reports P50/P95 FCT slowdown.  Both
// distances x all four schemes fan out across the sweep pool (DCP_JOBS).

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

constexpr SchemeKind kKinds[] = {SchemeKind::kPfc, SchemeKind::kIrn, SchemeKind::kMpRdma,
                                 SchemeKind::kDcp};

struct Distance {
  Time leaf_spine_delay;
  const char* label;
  std::uint64_t lossless_buffer;
};

// Non-const: percentile queries sort the underlying samples lazily.
void report_distance(const char* label, std::vector<WebSearchResult>& results) {
  for (double pct : {50.0, 95.0}) {
    char title[96];
    std::snprintf(title, sizeof(title), "Fig 15: cross-DC %s, P%.0f FCT slowdown", label, pct);
    banner(title);
    Table t({"Metric", "PFC", "IRN", "MP-RDMA", "DCP"});
    std::vector<std::string> row{"OVERALL"};
    for (auto& r : results) row.push_back(Table::num(r.background.overall().percentile(pct), 2));
    t.add_row(row);
    std::vector<std::string> done{"flows done"};
    for (auto& r : results) {
      done.push_back(std::to_string(r.flows_completed) + "/" + std::to_string(r.flows_total));
    }
    t.add_row(done);
    t.print();
  }
}

}  // namespace

int main() {
  const Distance distances[] = {
      {microseconds(500), "100 km (500 us leaf-spine)", 600ull * 1024 * 1024},
      {milliseconds(5), "1000 km (5 ms leaf-spine)", 6ull * 1024 * 1024 * 1024},
  };

  struct Trial {
    Distance d;
    SchemeKind k;
  };
  std::vector<Trial> trials;
  for (const Distance& d : distances) {
    for (SchemeKind k : kKinds) trials.push_back({d, k});
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  std::vector<WebSearchResult> results = pool.run(trials.size(), [&](std::size_t i) {
    const Distance& d = trials[i].d;
    const SchemeKind k = trials[i].k;
    SchemeOptions opt;
    // Timers must scale with the fabric RTT.
    const Time rtt = 2 * (2 * microseconds(1) + 2 * d.leaf_spine_delay);
    opt.base_rtt = rtt;
    opt.rto_high = 2 * rtt + microseconds(320);
    opt.rto_low = rtt + microseconds(100);
    opt.dcp_msg_timeout = 2 * rtt + milliseconds(1);
    if (k == SchemeKind::kPfc || k == SchemeKind::kMpRdma) {
      opt.buffer_bytes = d.lossless_buffer;
    }

    WebSearchParams p;
    p.scheme = k;
    p.opt = opt;
    // Higher offered load than intra-DC: the paper notes servers generate
    // more traffic cross-DC (larger BDP), making congestion more severe.
    p.load = 0.7;
    p.clos.leaf_spine_delay = d.leaf_spine_delay;
    if (full_scale()) {
      p.clos.spines = 16;
      p.clos.leaves = 16;
      p.clos.hosts_per_leaf = 16;
      p.num_flows = 5000;
    } else {
      p.clos.spines = 4;
      p.clos.leaves = 4;
      p.clos.hosts_per_leaf = 8;
      p.num_flows = 800;
    }
    p.max_time = seconds(30);
    WebSearchResult r = run_websearch(p);
    agg.add(r.core);
    return r;
  });

  for (std::size_t d = 0; d < std::size(distances); ++d) {
    std::vector<WebSearchResult> slice(results.begin() + d * std::size(kKinds),
                                       results.begin() + (d + 1) * std::size(kKinds));
    report_distance(distances[d].label, slice);
  }
  report_sweep(pool, agg);

  std::printf("\nPaper shape: DCP's advantage grows with distance (larger BDP -> more\n"
              "severe congestion); lossless schemes oscillate because of the giant\n"
              "PFC-headroom buffers, and DCP keeps the 32 MB buffer throughout.\n");
  return 0;
}
