// Simulator-core throughput benchmark: measures how fast the substrate
// itself processes events, micro (raw EventQueue churn) and macro (a full
// websearch-on-CLOS run), and writes BENCH_core.json next to the binary.
//
// The seed_* constants are the same measurements taken at the pre-rewrite
// seed (std::function events, binary heap + lazy-cancel hash set, by-value
// Packet moves), on the same workloads, so the JSON carries the
// before/after comparison the numbers in docs/architecture.md come from.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/fuzzer.h"
#include "check/invariant_oracle.h"
#include "harness/checkpoint.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "net/channel.h"
#include "sim/event_queue.h"
#include "stats/core_perf.h"
#include "switch/switch.h"
#include "topo/network.h"
#include "transports/ec_codec.h"

namespace {

using namespace dcp;

// Seed (commit d08d0a0) throughput on these exact workloads.
constexpr double kSeedMicroEventsPerSec = 11.2e6;  // 89.0 ns / schedule+fire
constexpr double kSeedMacroEventsPerSec = 3.96e6;  // 3,639,028 events in 0.92 s

/// Steady-state schedule->fire churn at depth 1024: the same loop as
/// BM_EventQueuePushPop, measured as events/sec over `total` events.
CorePerf micro_event_churn(std::uint64_t total) {
  EventQueue q;
  Time now = 0;
  std::int64_t t = 0;
  // Warm up: fill the slab and the heap to working depth.
  for (int i = 0; i < 1024; ++i) q.push(++t, [] {});
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    q.push(++t, [] {});
    q.pop_and_run(now);
  }
  CorePerf p;
  p.events_processed = total;
  p.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return p;
}

/// Counts deliveries and drops them; the lane microbenchmark's far end.
class BenchSink final : public Node {
 public:
  BenchSink(Simulator& sim, Logger& log) : Node(sim, log, 0, "sink") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t) override { pkt.reset(); }
};

/// Bursty wire delivery — the shape that separates the two schedulers.
/// Each round hands the channel a back-to-back burst; the plain heap holds
/// one entry per in-flight packet (every pop sifts across the burst), the
/// lane holds the head only.  Same (t, seq) stream either way, so the two
/// runs process identical event counts.
CorePerf micro_lane_burst(bool lanes, int rounds, int burst) {
  Simulator sim;
  sim.set_use_lanes(lanes);
  Logger log(LogLevel::kOff);
  BenchSink sink(sim, log);
  Channel ch(sim, Bandwidth::gbps(100), microseconds(1));
  ch.connect(&sink, 0);
  const Time ser = ch.serialization(1000);

  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < burst; ++i) {
      Packet p;
      p.type = PktType::kData;
      p.wire_bytes = 1000;
      p.payload_bytes = 1000;
      ch.deliver(p, static_cast<Time>(i + 1) * ser);
    }
    sim.run();
  }
  CorePerf p;
  p.events_processed = sim.events_processed();
  p.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return p;
}

/// One switch hop under a mixed data/ACK/header-only stream — the path the
/// static-dispatch + hot/cold-split work targets.  A 4:1-oversubscribed
/// ingress wire feeds one egress port, so the data queue builds past the
/// (shallow) trim threshold and every receive outcome runs: classification,
/// ECMP-cache hit, data enqueue, trim-to-HO, control-queue enqueue, and
/// over-threshold ACK drop.  With `devirt` the channel static-dispatches
/// into Switch::receive_fast; without it every arrival takes the virtual
/// Node::receive hop.  The (t, seq) stream is identical either way, so the
/// two runs process the same event count and the ratio is the dispatch win.
CorePerf micro_switch_receive(bool devirt, int rounds, int burst) {
  Simulator sim;
  sim.set_use_devirt(devirt);
  Logger log(LogLevel::kOff);
  BenchSink sink(sim, log);

  SwitchConfig cfg;
  cfg.trimming = true;
  cfg.trim_threshold_bytes = 64 * 1024;  // shallow: trims start mid-burst
  Switch sw(sim, log, /*id=*/1, "sw", cfg, /*seed=*/42);
  const std::uint32_t out = sw.add_port(Bandwidth::gbps(100), microseconds(1));
  sw.connect(out, &sink, 0);
  const NodeId kDst = 9;
  sw.routes().add_route(kDst, out);

  Channel in(sim, Bandwidth::gbps(400), microseconds(1));  // 4:1 oversubscription
  in.connect(&sw, 0);
  const Time ser = in.serialization(1000);

  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < burst; ++i) {
      Packet p;
      p.dst = kDst;
      p.flow = static_cast<FlowId>(i % 32);  // a few flows: the route cache engages
      if (i % 8 == 7) {  // returning DCP ACK (dropped when over threshold)
        p.type = PktType::kAck;
        p.tag = DcpTag::kAck;
        p.wire_bytes = HeaderSizes::kDcpAck;
      } else if (i % 8 == 3) {  // already-trimmed HO from an upstream hop
        p.type = PktType::kHeaderOnly;
        p.tag = DcpTag::kHeaderOnly;
        p.queue_class = QueueClass::kControl;
        p.wire_bytes = HeaderSizes::kDcpHeaderOnly;
      } else {  // DCP data (trimmed, not dropped, above threshold)
        p.type = PktType::kData;
        p.tag = DcpTag::kData;
        p.wire_bytes = 1000;
        p.payload_bytes = 1000 - HeaderSizes::kDcpHeaderOnly;
      }
      in.deliver(p, static_cast<Time>(i + 1) * ser);
    }
    sim.run();
  }
  CorePerf p;
  p.events_processed = sim.events_processed();
  p.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return p;
}

/// GF(256) codec throughput at the FEC tier's wire shape: encode k
/// MTU-sized chunks into m parity, erase the worst case (the first m data
/// chunks), decode the group back.  "Events" are chunks pushed through the
/// coder — k+m out of encode plus k out of decode per round — so
/// events/sec is the chunk rate the streaming sender/receiver pair could
/// sustain at 1000-byte chunks.
CorePerf micro_fec_codec(unsigned k, unsigned m, int rounds) {
  const EcCodec codec(k, m);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(1000));
  for (unsigned i = 0; i < k; ++i) {
    for (std::size_t b = 0; b < data[i].size(); ++b) {
      data[i][b] = static_cast<std::uint8_t>(i * 151 + b * 7 + 1);
    }
  }
  std::uint8_t sink = 0;
  std::uint64_t chunks = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::vector<std::uint8_t>> all = data;
    for (auto& p : codec.encode(data)) all.push_back(std::move(p));
    std::vector<bool> present(k + m, true);
    for (unsigned i = 0; i < m; ++i) {
      present[i] = false;
      all[i].clear();
    }
    if (!codec.decode(all, present)) {
      chunks = 0;  // poison the entry: a failed decode is a loud regression
      break;
    }
    sink ^= all[0][500];
    chunks += 2 * k + m;
  }
  CorePerf p;
  p.events_processed = chunks + (sink == 255 ? 1 : 0);  // keep the work live
  p.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return p;
}

/// Checkpoint round-trip throughput: a DCP world paused mid-run is saved
/// and restored into a fresh world each round (construction included —
/// the re-arm model makes a rebuild part of every restore).  "Events" are
/// the state-stream bytes moved per round (saved + restored), so
/// events/sec is StateIO overlay bandwidth; a restored-digest mismatch
/// poisons the entry.
CorePerf micro_snapshot_save_restore(int rounds) {
  FuzzScenario s;
  s.seed = 42;
  s.scheme = SchemeKind::kDcp;
  s.spines = 2;
  s.leaves = 4;
  s.hosts_per_leaf = 2;
  s.max_time = milliseconds(5);
  s.flows = {{0, 5, 64 * 1024, 4096, microseconds(5)},
             {2, 7, 24 * 1024, 0, microseconds(20)},
             {6, 1, 96 * 1024, 16384, microseconds(40)},
             {4, 3, 8 * 1024, 4096, microseconds(120)}};
  const WorldSpec spec = fuzz_world_spec(s, FuzzOptions{});
  SimWorld base(spec);
  base.run_to(microseconds(60));

  std::uint64_t bytes = 0;
  bool ok = true;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    SnapshotImage img;
    if (!base.save(img)) {
      ok = false;
      break;
    }
    SimWorld w(spec);
    if (!w.restore(img) || w.digest() != base.digest()) {
      ok = false;
      break;
    }
    bytes += 2 * img.state.size();
  }
  CorePerf p;
  p.events_processed = ok ? bytes : 0;  // poison on failure: loud regression
  p.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return p;
}

/// Full-stack macro run: DCP on a 2x2x4 CLOS with 0.5% injected loss,
/// 400 websearch flows at 40% load (the seed baseline was measured on this
/// exact configuration).  With `oracle`, the InvariantOracle rides along —
/// the delta against the unarmed entry is the checking overhead (the armed
/// run must also come back clean).
CorePerf macro_websearch(bool oracle = false) {
  Simulator sim;
  Logger log(LogLevel::kOff);
  Network net(sim, log);

  SchemeSetup s = make_scheme(SchemeKind::kDcp, SchemeOptions{});
  s.sw.inject_loss_rate = 0.005;
  ClosParams cp;
  cp.spines = 2;
  cp.leaves = 2;
  cp.hosts_per_leaf = 4;
  cp.sw = s.sw;
  ClosTopology topo = build_clos(net, cp);
  apply_scheme(net, s);

  FlowGenParams fg;
  fg.load = 0.4;
  fg.num_flows = 400;
  fg.seed = 7;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);

  std::unique_ptr<InvariantOracle> ora;
  if (oracle) ora = std::make_unique<InvariantOracle>(net);
  CorePerfTimer timer(sim);
  net.run_until_done(seconds(10));
  CorePerf perf = timer.finish();
  if (ora) {
    ora->finalize();
    if (!ora->ok()) {
      std::fprintf(stderr, "ORACLE VIOLATION in macro bench: %s\n", ora->summary().c_str());
      perf.events_processed = 0;  // poison the entry so the regression is loud
    }
  }
  return perf;
}

/// The macro shape on the space-parallel sharded substrate: one shard per
/// leaf group (DCP_SHARDS=2 on this 2-leaf CLOS).  Results are bit-
/// identical to the serial macro — the wall clock is the entry's point.
/// On a single-core runner the window barriers make this *slower* than
/// serial; the perf gate only enforces it on >= 4 hardware threads.
CorePerf macro_websearch_sharded(int shards) {
  ShardGroup group(shards);
  Logger log(LogLevel::kOff);
  Network net(group, log);

  SchemeSetup s = make_scheme(SchemeKind::kDcp, SchemeOptions{});
  s.sw.inject_loss_rate = 0.005;
  ClosParams cp;
  cp.spines = 2;
  cp.leaves = 2;
  cp.hosts_per_leaf = 4;
  cp.sw = s.sw;
  ClosTopology topo = build_clos(net, cp);
  apply_scheme(net, s);

  FlowGenParams fg;
  fg.load = 0.4;
  fg.num_flows = 400;
  fg.seed = 7;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);

  CorePerfTimer timer(group);
  net.run_until_done(seconds(10));
  return timer.finish();
}

/// Faster (by wall clock) of two macro samples; a poisoned sample (oracle
/// violation zeroed its event count) always wins so the regression stays
/// loud.
CorePerf min_wall(const CorePerf& a, const CorePerf& b) {
  if (a.events_processed == 0) return a;
  if (b.events_processed == 0) return b;
  return b.wall_seconds < a.wall_seconds ? b : a;
}

/// The same metric surfaced through the standard harness runner, proving
/// every experiment reports substrate speed for free.
CorePerf harness_websearch() {
  WebSearchParams p;
  p.clos.spines = 2;
  p.clos.leaves = 2;
  p.clos.hosts_per_leaf = 4;
  p.load = 0.4;
  p.num_flows = 400;
  p.seed = 7;
  return run_websearch(p).core;
}

/// Digest of one trial for the serial-vs-parallel identity check.
struct TrialDigest {
  std::uint64_t events = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  std::size_t completed = 0;

  bool operator==(const TrialDigest&) const = default;
};

/// An 8-trial seed sweep of the harness websearch run, executed with
/// `jobs` workers.  Returns per-trial digests (trial-indexed, so the
/// serial and parallel vectors compare element-wise).
std::vector<TrialDigest> suite_sweep(unsigned jobs, double* wall_seconds) {
  SweepRunner pool(jobs);
  pool.set_progress(false);
  std::vector<TrialDigest> out = pool.run(8, [](std::size_t i) {
    WebSearchParams p;
    p.clos.spines = 2;
    p.clos.leaves = 2;
    p.clos.hosts_per_leaf = 4;
    p.load = 0.4;
    p.num_flows = 250;
    p.seed = 100 + i;  // 8 independent replications
    WebSearchResult r = run_websearch(p);
    TrialDigest d;
    d.events = r.core.events_processed;
    d.p50 = r.background.overall().percentile(50);
    d.p95 = r.background.overall().percentile(95);
    d.completed = r.flows_completed;
    return d;
  });
  *wall_seconds = pool.last_wall_seconds();
  return out;
}

/// Serial vs parallel wall clock over the same 8 trials — the
/// "suite_parallel" entry in BENCH_core.json.  On a single-core host the
/// speedup sits near 1.0x; it scales with cores because trials share no
/// mutable state.
SuiteParallelEntry suite_parallel() {
  SuiteParallelEntry s;
  s.trials = 8;
  s.jobs = sweep_jobs();
  const std::vector<TrialDigest> serial = suite_sweep(1, &s.serial_wall_seconds);
  const std::vector<TrialDigest> parallel = suite_sweep(s.jobs, &s.parallel_wall_seconds);
  s.bit_identical = serial == parallel;
  return s;
}

/// Pulls `field` out of the named benchmark object in a committed
/// BENCH_core.json.  Narrow by design: the file is produced by
/// export_core_perf_json, so "name" precedes the metrics of its entry.
double json_metric(const std::string& text, const std::string& bench, const std::string& field) {
  const std::size_t at = text.find("\"name\": \"" + bench + "\"");
  if (at == std::string::npos) return -1.0;
  const std::string key = "\"" + field + "\":";
  const std::size_t k = text.find(key, at);
  if (k == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + k + key.size(), nullptr);
}

/// `bench_core --check <committed BENCH_core.json>`: the CI perf-smoke
/// gate.  Re-measures the macro workload (best of 3) and fails when it
/// runs below 0.75x the committed events/sec — wide enough for shared-
/// runner noise, tight enough that losing the two-level scheduler's win
/// (~1.5x) trips it.
int run_check(const char* json_path) {
  std::ifstream in(json_path);
  if (!in) {
    std::fprintf(stderr, "--check: cannot open %s\n", json_path);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const double committed = json_metric(ss.str(), "macro_websearch_clos_loss", "events_per_sec");
  if (committed <= 0.0) {
    std::fprintf(stderr, "--check: no macro_websearch_clos_loss entry in %s\n", json_path);
    return 2;
  }

  CorePerf fresh = macro_websearch(/*oracle=*/false);
  for (int i = 1; i < 3; ++i) fresh = min_wall(fresh, macro_websearch(/*oracle=*/false));

  const double floor = 0.75 * committed;
  const double got = fresh.events_per_sec();
  std::printf("perf-check macro_websearch_clos_loss: fresh %.3gM ev/s vs committed %.3gM "
              "(floor 0.75x = %.3gM) -> %s\n",
              got / 1e6, committed / 1e6, floor / 1e6, got >= floor ? "OK" : "REGRESSION");
  if (got < floor) return 1;

  // Memory gate: the same macro workload must not blow past 2.5x the
  // committed slab-arena footprint or peak RSS — wide enough for allocator
  // and runner variance, tight enough that a leaked slab chunk per window
  // or an O(hosts^2) route-table regression trips it.  Skipped against
  // committed files that predate the fields.
  const double arena_committed = json_metric(ss.str(), "macro_websearch_clos_loss", "arena_bytes");
  const double rss_committed =
      json_metric(ss.str(), "macro_websearch_clos_loss", "peak_rss_bytes");
  if (arena_committed > 0.0 && fresh.arena_bytes > 0) {
    const double ceil = 2.5 * arena_committed;
    const double a = static_cast<double>(fresh.arena_bytes);
    std::printf("perf-check arena_bytes: fresh %.3gMB vs committed %.3gMB "
                "(ceiling 2.5x = %.3gMB) -> %s\n",
                a / 1e6, arena_committed / 1e6, ceil / 1e6, a <= ceil ? "OK" : "REGRESSION");
    if (a > ceil) return 1;
  } else {
    std::printf("perf-check arena_bytes: skipped (no committed entry)\n");
  }
  if (rss_committed > 0.0 && fresh.peak_rss_bytes > 0) {
    const double ceil = 2.5 * rss_committed;
    const double r = static_cast<double>(fresh.peak_rss_bytes);
    std::printf("perf-check peak_rss_bytes: fresh %.3gMB vs committed %.3gMB "
                "(ceiling 2.5x = %.3gMB) -> %s\n",
                r / 1e6, rss_committed / 1e6, ceil / 1e6, r <= ceil ? "OK" : "REGRESSION");
    if (r > ceil) return 1;
  } else {
    std::printf("perf-check peak_rss_bytes: skipped (no committed entry)\n");
  }

  // Switch-datapath micro: short (so noisier than the macro), hence the
  // wider 0.70x floor — still tight enough that losing the static dispatch
  // or fattening PacketHot past a cache line shows up.  Skipped (with a
  // note) against committed files that predate the entry.
  const double sw_committed = json_metric(ss.str(), "micro_switch_receive", "events_per_sec");
  if (sw_committed > 0.0) {
    CorePerf sw = micro_switch_receive(/*devirt=*/true, /*rounds=*/1500, /*burst=*/512);
    for (int i = 1; i < 3; ++i) {
      sw = min_wall(sw, micro_switch_receive(/*devirt=*/true, 1500, 512));
    }
    const double sw_floor = 0.70 * sw_committed;
    const double sw_got = sw.events_per_sec();
    std::printf("perf-check micro_switch_receive: fresh %.3gM ev/s vs committed %.3gM "
                "(floor 0.70x = %.3gM) -> %s\n",
                sw_got / 1e6, sw_committed / 1e6, sw_floor / 1e6,
                sw_got >= sw_floor ? "OK" : "REGRESSION");
    if (sw_got < sw_floor) return 1;
  } else {
    std::printf("perf-check micro_switch_receive: skipped (no committed entry)\n");
  }

  // Snapshot round-trip micro: dominated by world rebuild + StateIO
  // memcpy, so it is steadier than the event-path micros; 0.60x still
  // allows shared-runner noise while catching an accidental O(n^2) in the
  // overlay or a state-stream blow-up.  Skipped (with a note) against
  // committed files that predate the entry.
  const double snap_committed = json_metric(ss.str(), "micro_snapshot_save_restore", "events_per_sec");
  if (snap_committed > 0.0) {
    CorePerf snap = micro_snapshot_save_restore(200);
    for (int i = 1; i < 3; ++i) snap = min_wall(snap, micro_snapshot_save_restore(200));
    const double snap_floor = 0.60 * snap_committed;
    const double snap_got = snap.events_per_sec();
    std::printf("perf-check micro_snapshot_save_restore: fresh %.3gM bytes/s vs committed %.3gM "
                "(floor 0.60x = %.3gM) -> %s\n",
                snap_got / 1e6, snap_committed / 1e6, snap_floor / 1e6,
                snap_got >= snap_floor ? "OK" : "REGRESSION");
    if (snap_got < snap_floor) return 1;
  } else {
    std::printf("perf-check micro_snapshot_save_restore: skipped (no committed entry)\n");
  }

  // Sharded gate: only meaningful where the two shard workers get real
  // cores.  On >= 4 hardware threads the sharded macro must beat serial
  // by > 1.5x (single trial); below that the windows time-slice one core
  // and the number says nothing, so the gate is skipped.
  if (std::thread::hardware_concurrency() >= 4) {
    const CorePerf sharded = macro_websearch_sharded(2);
    const double speedup = sharded.events_per_sec() / got;
    std::printf("perf-check macro_websearch_sharded: %.3gM ev/s, %.2fx vs serial "
                "(floor 1.5x) -> %s\n",
                sharded.events_per_sec() / 1e6, speedup, speedup > 1.5 ? "OK" : "REGRESSION");
    if (speedup <= 1.5) return 1;
  } else {
    std::printf("perf-check macro_websearch_sharded: skipped (%u hardware threads < 4)\n",
                std::thread::hardware_concurrency());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--check") == 0) return run_check(argv[2]);

  std::vector<CorePerfEntry> entries;
  entries.push_back({"micro_event_queue_push_pop_1M", micro_event_churn(1'000'000),
                     kSeedMicroEventsPerSec});
  // Lane scheduler vs plain heap on the bursty-wire microbenchmark: the
  // entry's perf is the lanes-on run; the "seed" column carries the plain
  // heap on the identical event stream, so speedup_vs_seed is the lane win.
  const CorePerf lane_on = micro_lane_burst(/*lanes=*/true, /*rounds=*/2000, /*burst=*/512);
  const CorePerf lane_off = micro_lane_burst(/*lanes=*/false, 2000, 512);
  entries.push_back({"micro_lane_vs_heap", lane_on, lane_off.events_per_sec()});
  // Static vs virtual dispatch on the single-switch datapath: the entry's
  // perf is the devirtualized run; the "seed" column carries the virtual-hop
  // run of the identical stream, so speedup_vs_seed is the dispatch win.
  const CorePerf swrecv_on = micro_switch_receive(/*devirt=*/true, /*rounds=*/1500, /*burst=*/512);
  const CorePerf swrecv_off = micro_switch_receive(/*devirt=*/false, 1500, 512);
  entries.push_back({"micro_switch_receive", swrecv_on, swrecv_off.events_per_sec()});
  // FEC codec at the default (8, 2) and the widest swept (16, 4) geometry;
  // no seed column (the coder is new with the FEC tier).
  entries.push_back({"micro_fec_codec_8_2", micro_fec_codec(8, 2, 20000), 0.0});
  entries.push_back({"micro_fec_codec_16_4", micro_fec_codec(16, 4, 10000), 0.0});
  // Checkpoint round-trip bandwidth (state bytes through StateIO per
  // second); no seed column (the subsystem is new).
  entries.push_back({"micro_snapshot_save_restore", micro_snapshot_save_restore(400), 0.0});
  // The armed-vs-unarmed delta is a few percent — smaller than scheduler
  // noise on a loaded host — so the pair is sampled interleaved (drift hits
  // both sides alike) and each entry keeps its best-of-3 wall clock.
  CorePerf macro_unarmed = macro_websearch(/*oracle=*/false);
  CorePerf macro_armed = macro_websearch(/*oracle=*/true);
  for (int i = 1; i < 3; ++i) {
    macro_unarmed = min_wall(macro_unarmed, macro_websearch(/*oracle=*/false));
    macro_armed = min_wall(macro_armed, macro_websearch(/*oracle=*/true));
  }
  entries.push_back({"macro_websearch_clos_loss", macro_unarmed, kSeedMacroEventsPerSec});
  entries.push_back({"macro_websearch_oracle_armed", macro_armed, 0.0});
  // Sharded macro: the baseline column carries the serial macro from this
  // same process, so speedup_vs_seed is this machine's sharding win (the
  // acceptance target is > 1.5x on a >= 4-core runner; expect < 1x on one
  // core, where the windows serialize onto a single thread).
  CorePerf macro_sharded = macro_websearch_sharded(2);
  for (int i = 1; i < 3; ++i) macro_sharded = min_wall(macro_sharded, macro_websearch_sharded(2));
  CorePerfEntry sharded_entry{"macro_websearch_sharded", macro_sharded,
                              macro_unarmed.events_per_sec()};
  sharded_entry.shards = 2;
  sharded_entry.hardware_threads = std::thread::hardware_concurrency();
  entries.push_back(sharded_entry);
  entries.push_back({"harness_run_websearch", harness_websearch(), 0.0});

  for (const CorePerfEntry& e : entries) {
    std::printf("%-32s events=%llu wall=%.3fs events/sec=%.3gM", e.name.c_str(),
                static_cast<unsigned long long>(e.perf.events_processed), e.perf.wall_seconds,
                e.perf.events_per_sec() / 1e6);
    if (e.baseline_events_per_sec > 0.0) {
      std::printf("  (seed %.3gM, %.2fx)", e.baseline_events_per_sec / 1e6,
                  e.perf.events_per_sec() / e.baseline_events_per_sec);
    }
    std::printf("\n");
  }

  // Oracle overhead on the macro run (acceptance: <= 5% when armed, zero
  // when off — the unarmed run compiles to null-checked hook sites only).
  const double unarmed = macro_unarmed.events_per_sec();
  const double armed = macro_armed.events_per_sec();
  if (unarmed > 0.0 && armed > 0.0) {
    std::printf("%-32s %.2f%% (armed %.3gM vs unarmed %.3gM events/sec)\n", "oracle_overhead",
                (unarmed / armed - 1.0) * 100.0, armed / 1e6, unarmed / 1e6);
  }

  const SuiteParallelEntry suite = suite_parallel();
  std::printf("%-32s trials=%zu jobs=%u serial=%.3fs parallel=%.3fs speedup=%.2fx%s\n",
              "suite_parallel", suite.trials, suite.jobs, suite.serial_wall_seconds,
              suite.parallel_wall_seconds, suite.speedup(),
              suite.bit_identical ? "" : "  RESULTS DIVERGED");

  const bool ok = export_core_perf_json("BENCH_core.json", entries, &suite);
  std::printf("BENCH_core.json %s\n", ok ? "written" : "FAILED");
  return (ok && suite.bit_identical) ? 0 : 1;
}
