// Fig. 2: retransmission timeouts under WebSearch (0.3) background plus
// N-to-1 incast (0.1), for IRN+ECMP, IRN+AR and DCP.  IRN needs RTOs for
// tail and re-lost packets; DCP recovers everything through header-only
// notifications.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

WebSearchResult run_one(SchemeKind k) {
  WebSearchParams p;
  p.scheme = k;
  p.load = 0.3;
  p.with_incast = true;
  if (full_scale()) {
    p.clos.spines = 16;
    p.clos.leaves = 16;
    p.clos.hosts_per_leaf = 16;
    p.num_flows = 8000;
    p.incast.fan_in = 128;
    p.incast.bursts = 15;
  } else {
    p.clos.spines = 4;
    p.clos.leaves = 4;
    p.clos.hosts_per_leaf = 4;
    p.num_flows = 500;
    p.incast.fan_in = 12;
    p.incast.bursts = 10;
  }
  p.incast.load = 0.1;
  // Deep enough bursts to overflow the 1 MB egress queue even at the
  // reduced fan-in (the paper's 128-to-1 overflows it trivially).
  // Reduced scale needs deeper per-sender bursts to overflow the 1 MB
  // queue; at paper scale 128 senders x 64 KB already do (and 256 KB x 128
  // would exhaust the whole shared buffer, which the paper's setup avoids).
  p.incast.bytes_per_sender = full_scale() ? 64 * 1024 : 256 * 1024;
  p.max_time = seconds(5);
  return run_websearch(p);
}

std::uint64_t max_of(const std::vector<std::uint64_t>& v) {
  return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
}

}  // namespace

int main() {
  banner("Fig 2: RTO counts, WebSearch 0.3 + incast 0.1");

  const SchemeKind kinds[] = {SchemeKind::kIrnEcmp, SchemeKind::kIrn, SchemeKind::kDcp};
  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<WebSearchResult> results = pool.run(std::size(kinds), [&](std::size_t i) {
    WebSearchResult r = run_one(kinds[i]);
    agg.add(r.core);
    return r;
  });
  report_sweep(pool, agg);
  const WebSearchResult& irn_ecmp = results[0];
  const WebSearchResult& irn_ar = results[1];
  const WebSearchResult& dcp = results[2];

  Table t({"Metric", "IRN-ECMP", "IRN-AR", "DCP"});
  auto row = [&](const char* label, auto getter) {
    t.add_row({label, std::to_string(getter(irn_ecmp)), std::to_string(getter(irn_ar)),
               std::to_string(getter(dcp))});
  };
  row("background timeouts (total)",
      [](const WebSearchResult& r) { return r.timeouts_background; });
  row("background timeouts (max/flow)",
      [](const WebSearchResult& r) { return max_of(r.timeouts_per_flow_bg); });
  row("incast timeouts (total)", [](const WebSearchResult& r) { return r.timeouts_incast; });
  row("incast timeouts (max/flow)",
      [](const WebSearchResult& r) { return max_of(r.timeouts_per_flow_incast); });
  t.print();

  std::printf("\nPaper shape: IRN suffers RTOs in both background and incast flows (more\n"
              "with AR, whose spurious retransmissions add load); DCP has none.\n");
  return 0;
}
