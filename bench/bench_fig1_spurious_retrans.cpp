// Fig. 1: spurious retransmissions under packet-level load balancing.
// WebSearch at 0.3 load on the CLOS with adaptive routing, no injected
// loss: IRN misreads OOO arrivals as losses and retransmits massively;
// DCP retransmits nothing.  Reports (a) the mean retransmission ratio per
// flow-size bucket and (b) the CDF of per-flow retransmission ratios by
// size class.

#include <cstdio>
#include <map>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "stats/fct_stats.h"
#include "stats/percentile.h"

using namespace dcp;

namespace {

WebSearchResult run_one(SchemeKind k) {
  WebSearchParams p;
  p.scheme = k;
  p.load = 0.3;
  if (full_scale()) {
    p.clos.spines = 16;
    p.clos.leaves = 16;
    p.clos.hosts_per_leaf = 16;
    p.num_flows = 10000;
  } else {
    p.clos.spines = 4;
    p.clos.leaves = 4;
    p.clos.hosts_per_leaf = 4;
    p.num_flows = 600;
  }
  return run_websearch(p);
}

}  // namespace

int main() {
  banner("Fig 1: spurious retransmissions under AR (WebSearch 0.3, no loss)");

  const SchemeKind kinds[] = {SchemeKind::kIrn, SchemeKind::kDcp};
  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<WebSearchResult> results = pool.run(std::size(kinds), [&](std::size_t i) {
    WebSearchResult r = run_one(kinds[i]);
    agg.add(r.core);
    return r;
  });
  report_sweep(pool, agg);
  const WebSearchResult& irn = results[0];
  const WebSearchResult& dcp = results[1];

  std::printf("Actual drops: IRN run = %llu, DCP run = %llu (loss-free by design)\n\n",
              static_cast<unsigned long long>(irn.sw.dropped_data + irn.sw.injected_drops),
              static_cast<unsigned long long>(dcp.sw.dropped_data + dcp.sw.injected_drops));

  // (a) Mean retransmission ratio per flow-size decade.
  Table a({"Flow size", "IRN retrans ratio", "DCP retrans ratio"});
  const std::uint64_t edges[] = {10'000, 100'000, 1'000'000, 10'000'000, UINT64_MAX};
  const char* labels[] = {"<=10KB", "<=100KB", "<=1MB", "<=10MB", ">10MB"};
  for (int b = 0; b < 5; ++b) {
    auto mean_of = [&](const WebSearchResult& r) {
      double sum = 0;
      int n = 0;
      for (const RetransSample& s : r.retrans) {
        const std::uint64_t lo = b == 0 ? 0 : edges[b - 1];
        if (s.flow_bytes > lo && s.flow_bytes <= edges[b]) {
          sum += s.retrans_ratio;
          ++n;
        }
      }
      return n > 0 ? sum / n : 0.0;
    };
    a.add_row({labels[b], Table::num(mean_of(irn), 3), Table::num(mean_of(dcp), 3)});
  }
  a.print();

  // (b) CDF of IRN's per-flow retransmission ratio by size class.
  banner("Fig 1b: CDF of IRN's retransmission ratio per size class");
  std::map<SizeClass, PercentileEstimator> cls;
  std::map<SizeClass, int> spurious;
  std::map<SizeClass, int> count;
  for (const RetransSample& s : irn.retrans) {
    const SizeClass c = size_class_of(s.flow_bytes);
    cls[c].add(s.retrans_ratio);
    count[c]++;
    if (s.retrans_ratio > 0) spurious[c]++;
  }
  Table b({"Class", "flows", "w/ retrans", "P50 ratio", "P90 ratio", "max"});
  for (SizeClass c : {SizeClass::kSmall, SizeClass::kMedium, SizeClass::kLarge}) {
    const double frac = count[c] > 0 ? 100.0 * spurious[c] / count[c] : 0.0;
    b.add_row({size_class_name(c), std::to_string(count[c]), Table::num(frac, 0) + "%",
               Table::num(cls[c].percentile(50), 3), Table::num(cls[c].percentile(90), 3),
               Table::num(cls[c].percentile(100), 3)});
  }
  b.print();

  std::printf("\nPaper shape: ~50%%/80%%/90%% of small/medium/large IRN flows retransmit\n"
              "spuriously (ratios up to 100%%); every DCP flow has ratio 0.\n");
  return 0;
}
