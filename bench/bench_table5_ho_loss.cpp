// Table 5: robustness of the lossless control plane — the ratio of lost
// header-only packets under severe incast, with the WRR weight set from
// w = (N-1)/(r-N+1) for two values of the handled scale N, with and
// without DCQCN.  A shallow trim threshold maximizes trimming pressure.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"
#include "switch/scheduler.h"

using namespace dcp;

namespace {

double run_one(int fan_in, int n_scale, bool with_cc) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);

  SchemeOptions opt;
  opt.with_cc = with_cc;
  SchemeSetup setup = make_scheme(SchemeKind::kDcp, opt);
  const double r = 1073.0 / 57.0;  // data : HO wire-size ratio
  setup.sw.control_weight = wrr_control_weight(n_scale, r, /*fallback=*/1.0);
  setup.sw.trim_threshold_bytes = 64 * 1024;  // stress the control plane
  if (with_cc) {
    setup.sw.ecn_kmin_bytes = setup.sw.trim_threshold_bytes / 5;
    setup.sw.ecn_kmax_bytes = setup.sw.trim_threshold_bytes * 4 / 5;
  }

  ClosParams clos;
  clos.spines = 4;
  clos.leaves = 4;
  clos.hosts_per_leaf = full_scale() ? 16 : 8;
  clos.sw = setup.sw;
  ClosTopology topo = build_clos(net, clos);
  apply_scheme(net, setup);

  // Background WebSearch at 0.3 plus one big synchronized incast.
  FlowGenParams fg;
  fg.load = 0.3;
  fg.num_flows = full_scale() ? 2000 : 300;
  fg.msg_bytes = opt.msg_bytes;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);

  IncastParams inc;
  inc.fan_in = std::min<int>(fan_in, static_cast<int>(topo.hosts.size()) - 1);
  inc.bursts = 4;
  inc.load = 0.5;
  inc.bytes_per_sender = 64 * 1024;
  inc.msg_bytes = opt.msg_bytes;
  generate_incast(net, topo.hosts, inc);

  net.run_until_done(seconds(10));
  const auto sw = net.total_switch_stats();
  const std::uint64_t total = sw.ho_seen + sw.dropped_ho;
  return total == 0 ? 0.0 : static_cast<double>(sw.dropped_ho) / static_cast<double>(total);
}

}  // namespace

int main() {
  banner("Table 5: HO packet loss ratio under severe incast");

  const int big = full_scale() ? 128 : 31;
  const int bigger = full_scale() ? 255 : 63;

  Table t({"Setting", "Loss rate w/o CC", "Loss rate w/ CC"});
  struct Cfg {
    int n;
    int fan_in;
  };
  for (const Cfg c : {Cfg{22, big}, Cfg{22, bigger}, Cfg{16, big}, Cfg{16, bigger}}) {
    char lbl[48];
    std::snprintf(lbl, sizeof(lbl), "N=%d; %d to 1", c.n, c.fan_in);
    const double no_cc = run_one(c.fan_in, c.n, false);
    const double cc = run_one(c.fan_in, c.n, true);
    t.add_row({lbl, Table::num(no_cc * 100, 3) + "%", Table::num(cc * 100, 3) + "%"});
  }
  t.print();

  std::printf("\nPaper shape: no HO loss with N=22 at any scale; only 0.16%% at 255-to-1\n"
              "with N=16 and no CC; zero everywhere once CC is enabled.\n");
  return 0;
}
