// Ablation: the WRR control-queue weight (paper §4.2).
//
// Sweeps the control:data scheduling weight under a heavy incast with a
// shallow trim threshold and reports (a) the HO loss ratio — the lossless
// control plane property — and (b) how much data throughput the control
// queue costs.  The paper's formula w = (N-1)/(r-N+1) sits at the knee:
// smaller weights start losing HO packets, larger ones only waste data
// bandwidth.

#include <cstdio>
#include <vector>

#include "harness/report.h"
#include "harness/scheme.h"
#include "harness/sweep.h"
#include "switch/scheduler.h"
#include "topo/dumbbell.h"

using namespace dcp;

namespace {

struct Result {
  double ho_loss = 0.0;
  double worst_fct_ms = 0.0;
  std::uint64_t trims = 0;
  std::uint64_t max_ctrl_queue = 0;  // peak control-queue backlog (bytes)
  bool all_done = false;
  CorePerf core;
};

Result run(double weight, int fan_in) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.control_weight = weight;
  s.sw.trim_threshold_bytes = 32 * 1024;  // shallow: trim storm guaranteed
  s.sw.buffer_bytes = 1024 * 1024;  // small buffer: a starved control queue
                                    // actually overflows instead of parking
  Star star = build_star(net, fan_in + 1, s.sw);
  apply_scheme(net, s);

  for (int i = 0; i < fan_in; ++i) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = star.hosts[static_cast<std::size_t>(fan_in)]->id();
    spec.bytes = 4 * 1024 * 1024;  // sustained pressure
    spec.msg_bytes = 512 * 1024;
    net.start_flow(spec);
  }
  CorePerfTimer timer(sim);
  net.run_until_done(seconds(10));

  Result r;
  r.core = timer.finish();
  r.all_done = net.all_flows_done();
  for (const auto& swp : net.switches()) {
    for (std::uint32_t pi = 0; pi < swp->num_ports(); ++pi) {
      r.max_ctrl_queue = std::max(
          r.max_ctrl_queue,
          swp->port(pi).queue(static_cast<int>(QueueClass::kControl)).max_bytes_seen());
    }
  }
  const auto sw = net.total_switch_stats();
  const std::uint64_t total_ho = sw.ho_seen + sw.dropped_ho;
  r.ho_loss = total_ho == 0 ? 0.0 : static_cast<double>(sw.dropped_ho) / total_ho;
  r.trims = sw.trimmed;
  for (const FlowRecord& rec : net.records()) {
    if (rec.complete()) r.worst_fct_ms = std::max(r.worst_fct_ms, to_ms(rec.fct()));
  }
  return r;
}

}  // namespace

int main() {
  const int fan_in = full_scale() ? 64 : 16;
  banner("Ablation: WRR control-queue weight (" + std::to_string(fan_in) + "-to-1 incast)");

  const double r_ratio = 1073.0 / 57.0;
  const double formula = wrr_control_weight(fan_in + 1, r_ratio, 4.0);

  const double weights[] = {0.01, 0.05, 0.25, 1.0, formula, 16.0};
  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<Result> results = pool.run(std::size(weights), [&](std::size_t i) {
    Result res = run(weights[i], fan_in);
    agg.add(res.core);
    return res;
  });

  Table t({"Weight (ctl:data)", "HO loss", "Peak ctl queue", "Trims", "Worst FCT (ms)",
           "All flows done"});
  for (std::size_t i = 0; i < std::size(weights); ++i) {
    const double w = weights[i];
    const Result& res = results[i];
    char lbl[32];
    std::snprintf(lbl, sizeof(lbl), w == formula ? "%.2f (formula)" : "%.2f", w);
    t.add_row({lbl, Table::num(res.ho_loss * 100, 3) + "%",
               Table::bytes_human(res.max_ctrl_queue), std::to_string(res.trims),
               Table::num(res.worst_fct_ms, 2), res.all_done ? "yes" : "NO"});
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nThe formula weight keeps the control backlog to a couple of HO packets;\n"
              "small weights let HOs pool (throttling recovery - self-limiting at this\n"
              "fan-in).  Actual HO *loss* requires the shared buffer to fill with HOs,\n"
              "i.e. a ~200-to-1 first-window burst: exactly the paper's 255-to-1\n"
              "Table 5 cell.  Above the formula, nothing changes: the queue is short.\n");
  return 0;
}
