// Ablation: RetransQ PCIe batch size (paper §4.3, challenge #1).
//
// HO-based retransmission must fetch loss entries from host memory.  With
// batch size 1, every retransmitted packet costs a full PCIe round trip —
// the paper's back-of-envelope caps recovery throughput around
// 1KB / 2us = 4 Gbps.  Batching up to 16 entries per fetch amortizes the
// round trip and restores goodput.  We force 5% trimming on a long flow
// and sweep the batch size.

#include <cstdio>
#include <vector>

#include "harness/report.h"
#include "harness/scheme.h"
#include "harness/sweep.h"
#include "core/dcp_transport.h"
#include "topo/testbed.h"

using namespace dcp;

namespace {

struct Result {
  double goodput_gbps = 0.0;
  std::uint64_t pcie_fetches = 0;
  std::uint64_t retx = 0;
  CorePerf core;
};

Result run(std::uint32_t batch, Time pcie_rtt) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.tcfg.retrans_batch = batch;
  s.tcfg.pcie_rtt = pcie_rtt;
  TestbedParams tb;
  tb.sw = s.sw;
  TestbedTopology topo = build_testbed(net, tb);
  topo.sw1->config().inject_loss_rate = 0.5;  // brutal: half of all data trimmed
  apply_scheme(net, s);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = full_scale() ? 100ull * 1000 * 1000 : 20ull * 1000 * 1000;
  spec.msg_bytes = 4 * 1024 * 1024;
  const FlowId id = net.start_flow(spec);
  CorePerfTimer timer(sim);
  net.run_until_done(seconds(2));

  Result r;
  r.core = timer.finish();
  const FlowRecord& rec = net.record(id);
  if (rec.complete()) {
    r.goodput_gbps = static_cast<double>(rec.spec.bytes) * 8.0 /
                     (static_cast<double>(rec.fct()) / kSecond) / 1e9;
  }
  auto* snd = dynamic_cast<DcpSender*>(net.host(spec.src)->sender(id));
  if (snd != nullptr) {
    r.pcie_fetches = snd->dcp_stats().pcie_fetches;
    r.retx = snd->dcp_stats().ho_triggered_retx;
  }
  return r;
}

}  // namespace

int main() {
  banner("Ablation: RetransQ PCIe batch size (long flow, 50% forced trimming)");

  const std::uint32_t batches[] = {1u, 2u, 4u, 8u, 16u, 64u};
  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<Result> results = pool.run(std::size(batches), [&](std::size_t i) {
    Result r = run(batches[i], microseconds(2));
    agg.add(r.core);
    return r;
  });

  Table t({"Batch", "Goodput (Gbps)", "PCIe fetches", "HO retransmissions",
           "Retx per fetch"});
  for (std::size_t i = 0; i < std::size(batches); ++i) {
    const Result& r = results[i];
    t.add_row({std::to_string(batches[i]), Table::num(r.goodput_gbps, 2),
               std::to_string(r.pcie_fetches), std::to_string(r.retx),
               r.pcie_fetches > 0
                   ? Table::num(static_cast<double>(r.retx) / static_cast<double>(r.pcie_fetches), 1)
                   : "-"});
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nSmall batches pay one 2-us PCIe round trip per retransmitted packet and\n"
              "goodput under loss drops accordingly; the paper's batch of 16 (= the\n"
              "16 KB round quota) amortizes the fetch latency away.\n");
  return 0;
}
