// Table 4 (substituted): the paper reports FPGA LUT/register/BRAM usage of
// the RNIC-GBN vs DCP-RNIC prototypes (DCP costs only ~1.7%/1.1% more).
// Software cannot synthesize LUT counts, so — per the substitution note in
// DESIGN.md — we report the software analogue measured from this
// repository's implementations: per-QP connection-state bytes, the
// loss-tracking structure footprint at BDP, and hot-path steps per packet.
// The claim preserved is the *ratio*: DCP adds marginal overhead over GBN,
// unlike timestamp- or bitmap-based schemes.

#include <cstdio>

#include "analysis/resource_proxy.h"
#include "harness/report.h"

int main() {
  using namespace dcp;
  banner("Table 4 (software proxy): per-QP resource usage of the transports");

  const std::uint32_t bdp_pkts = 500;  // 400G x 10us / 1KB
  Table t({"Scheme", "Sender state", "Receiver state", "Loss-tracking @BDP",
           "Rx steps/packet"});
  for (const ResourceRow& r : resource_proxy_rows(bdp_pkts)) {
    t.add_row({r.scheme, Table::bytes_human(r.sender_state_bytes),
               Table::bytes_human(r.receiver_state_bytes), Table::bytes_human(r.tracking_bytes),
               Table::num(r.rx_steps_per_packet, 1)});
  }
  t.print();

  std::printf("\nPaper reference (FPGA): DCP-RNIC uses +1.7%% LUTs, +0.4%% registers,\n"
              "+1.1%% BRAM over RNIC-GBN.  Above, DCP's extra tracking state is tens of\n"
              "bytes per QP (counters + QPC fields) versus KBs for bitmap/timestamp\n"
              "schemes — the same marginal-overhead conclusion.\n");
  return 0;
}
