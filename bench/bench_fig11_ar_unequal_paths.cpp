// Fig. 11: adapting to unequal paths — two cross-switch flows over two
// cross links whose capacities are set to 1:1, 1:4 and 1:10.  DCP rides
// in-network adaptive routing; CX5 hashes each flow onto one path (ECMP)
// and starves when it lands on the thin one.  The ratio x trial x scheme
// matrix (36 runs) fans out across the sweep pool (DCP_JOBS).

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

int main() {
  banner("Fig 11: average goodput over unequal parallel paths");

  const double ratios[] = {1.0, 4.0, 10.0};
  const int trials_per_cell = 6;  // average over ECMP hash draws
  const std::uint64_t bytes = full_scale() ? 40ull * 1000 * 1000 : 10ull * 1000 * 1000;

  struct Trial {
    SchemeKind k;
    double ratio;
    std::uint16_t sport_base;
  };
  std::vector<Trial> trials;
  for (double ratio : ratios) {
    for (int s = 0; s < trials_per_cell; ++s) {
      const auto base = static_cast<std::uint16_t>(10000 + 101 * s);
      trials.push_back({SchemeKind::kCx5, ratio, base});
      trials.push_back({SchemeKind::kDcp, ratio, base});
    }
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<double> goodput = pool.run(trials.size(), [&](std::size_t i) {
    const UnequalPathsResult r =
        run_unequal_paths(trials[i].k, trials[i].ratio, bytes, {}, trials[i].sport_base);
    agg.add(r.core);
    return r.avg_goodput_gbps;
  });

  Table t({"Capacity ratio", "CX5 (Gbps)", "DCP (Gbps)"});
  for (std::size_t r = 0; r < std::size(ratios); ++r) {
    double cx5 = 0, dcp = 0;
    for (int s = 0; s < trials_per_cell; ++s) {
      cx5 += goodput[(r * trials_per_cell + s) * 2];
      dcp += goodput[(r * trials_per_cell + s) * 2 + 1];
    }
    char lbl[16];
    std::snprintf(lbl, sizeof(lbl), "1:%g", ratios[r]);
    t.add_row({lbl, Table::num(cx5 / trials_per_cell, 2), Table::num(dcp / trials_per_cell, 2)});
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nPaper shape: DCP's goodput stays stable across all ratios (packet-level\n"
              "AR fills both paths); CX5's average drops sharply as the paths diverge.\n");
  return 0;
}
