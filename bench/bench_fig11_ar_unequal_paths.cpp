// Fig. 11: adapting to unequal paths — two cross-switch flows over two
// cross links whose capacities are set to 1:1, 1:4 and 1:10.  DCP rides
// in-network adaptive routing; CX5 hashes each flow onto one path (ECMP)
// and starves when it lands on the thin one.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace dcp;

int main() {
  banner("Fig 11: average goodput over unequal parallel paths");

  Table t({"Capacity ratio", "CX5 (Gbps)", "DCP (Gbps)"});
  const int trials = 6;  // average over ECMP hash draws
  for (double ratio : {1.0, 4.0, 10.0}) {
    const std::uint64_t bytes = full_scale() ? 40ull * 1000 * 1000 : 10ull * 1000 * 1000;
    double cx5 = 0, dcp = 0;
    for (int s = 0; s < trials; ++s) {
      const auto base = static_cast<std::uint16_t>(10000 + 101 * s);
      cx5 += run_unequal_paths(SchemeKind::kCx5, ratio, bytes, {}, base).avg_goodput_gbps;
      dcp += run_unequal_paths(SchemeKind::kDcp, ratio, bytes, {}, base).avg_goodput_gbps;
    }
    char lbl[16];
    std::snprintf(lbl, sizeof(lbl), "1:%g", ratio);
    t.add_row({lbl, Table::num(cx5 / trials, 2), Table::num(dcp / trials, 2)});
  }
  t.print();

  std::printf("\nPaper shape: DCP's goodput stays stable across all ratios (packet-level\n"
              "AR fills both paths); CX5's average drops sharply as the paths diverge.\n");
  return 0;
}
