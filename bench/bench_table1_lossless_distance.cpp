// Table 1: maximum lossless communication distance with PFC enabled, for
// six commodity switching ASICs.  Purely analytic (Eq. 1 of the paper),
// computed from the ASIC spec table.

#include <cstdio>

#include "analysis/lossless_distance.h"
#include "harness/report.h"

int main() {
  using namespace dcp;
  banner("Table 1: max lossless communication distance with PFC");

  Table t({"ASIC", "Capacity", "Total buffer", "Buffer/port/100G", "Max lossless (1 queue)",
           "Max lossless (8 queues)"});
  for (const AsicSpec& a : commodity_asics()) {
    char cap[32], buf[32];
    std::snprintf(cap, sizeof(cap), "%d x %.0f Gbps", a.ports, a.gbps_per_port);
    std::snprintf(buf, sizeof(buf), "%.0f MB", a.buffer_mb);
    t.add_row({a.name, cap, buf, Table::num(buffer_per_port_per_100g_mb(a), 2) + " MB",
               Table::num(max_lossless_km(a, 1), 2) + " km",
               Table::num(max_lossless_km(a, 8) * 1000, 0) + " m"});
  }
  t.print();

  std::printf("\nPaper reference: Tomahawk 3 -> 4.1 km / 512 m; Tofino 1 -> 5.08 km / 634 m;\n"
              "Spectrum-4 -> 2.56 km / 320 m.  Values above are reproduced from Eq. (1)\n"
              "L = buffer / (bandwidth x one-hop-delay x 2), 5 us/km fiber delay.\n");
  return 0;
}
