// Fig. 12: AI workloads on the 16-RNIC testbed — four groups of four RNICs
// each run an AllReduce / AllToAll; DCP pairs with adaptive routing, CX5
// with ECMP.  Reports the per-group job completion time.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace dcp;

namespace {

void run_kind(CollectiveKind kind, const char* label) {
  banner(std::string("Fig 12: ") + label + " on the testbed (4 groups x 4 RNICs)");
  CollectiveExpParams p;
  p.kind = kind;
  p.use_clos = false;
  p.groups = 4;
  p.members_per_group = 4;
  p.total_bytes = full_scale() ? 300ull * 1000 * 1000 : 24ull * 1024 * 1024;

  p.scheme = SchemeKind::kCx5;
  const CollectiveResult cx5 = run_collectives(p);
  p.scheme = SchemeKind::kDcp;
  const CollectiveResult dcp = run_collectives(p);

  Table t({"Group", "CX5+ECMP JCT (ms)", "DCP+AR JCT (ms)", "Reduction"});
  double sum_cx5 = 0, sum_dcp = 0;
  for (std::size_t g = 0; g < cx5.jct_ms.size(); ++g) {
    sum_cx5 += cx5.jct_ms[g];
    sum_dcp += dcp.jct_ms[g];
    const double red = cx5.jct_ms[g] > 0 ? (1.0 - dcp.jct_ms[g] / cx5.jct_ms[g]) * 100.0 : 0.0;
    t.add_row({std::to_string(g + 1), Table::num(cx5.jct_ms[g], 2), Table::num(dcp.jct_ms[g], 2),
               Table::num(red, 0) + "%"});
  }
  t.print();
  std::printf("Average reduction: %.0f%%  (paper: up to 33%% AllReduce / 42%% AllToAll)\n",
              sum_cx5 > 0 ? (1.0 - sum_dcp / sum_cx5) * 100.0 : 0.0);
}

}  // namespace

int main() {
  run_kind(CollectiveKind::kAllReduce, "AllReduce");
  run_kind(CollectiveKind::kAllToAll, "AllToAll");
  return 0;
}
