// Fig. 13: WebSearch workload on the two-layer CLOS — FCT slowdown (P50,
// P95) per flow-size bucket at average loads 0.3 and 0.5 for PFC(+ECMP),
// IRN(+AR), MP-RDMA and DCP(+AR).

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace dcp;

namespace {

void run_load(double load) {
  const SchemeKind kinds[] = {SchemeKind::kPfc, SchemeKind::kIrn, SchemeKind::kMpRdma,
                              SchemeKind::kDcp};
  std::vector<WebSearchResult> results;
  for (SchemeKind k : kinds) {
    WebSearchParams p;
    p.scheme = k;
    p.load = load;
    if (full_scale()) {
      p.clos.spines = 16;
      p.clos.leaves = 16;
      p.clos.hosts_per_leaf = 16;
      p.num_flows = 20000;
    } else {
      p.clos.spines = 4;
      p.clos.leaves = 4;
      p.clos.hosts_per_leaf = 4;
      p.num_flows = 500;
    }
    results.push_back(run_websearch(p));
  }

  for (double pct : {50.0, 95.0}) {
    char title[96];
    std::snprintf(title, sizeof(title), "Fig 13: WebSearch load %.1f, P%.0f FCT slowdown", load,
                  pct);
    banner(title);
    Table t({"Flow size <=", "PFC (ECMP)", "IRN (AR)", "MP-RDMA", "DCP (AR)"});
    const auto edges = results[0].background.bucket_edges();
    std::vector<std::vector<double>> cols;
    for (auto& r : results) cols.push_back(r.background.per_bucket_percentile(pct));
    for (std::size_t b = 0; b < edges.size(); ++b) {
      bool any = false;
      for (auto& c : cols) any = any || c[b] > 0;
      if (!any) continue;
      const std::string lbl =
          edges[b] == UINT64_MAX ? ">last" : std::to_string(edges[b] / 1000) + " KB";
      std::vector<std::string> row{lbl};
      for (auto& c : cols) row.push_back(c[b] > 0 ? Table::num(c[b], 2) : "-");
      t.add_row(row);
    }
    std::vector<std::string> overall{"OVERALL"};
    for (auto& r : results) overall.push_back(Table::num(r.background.overall().percentile(pct), 2));
    t.add_row(overall);
    t.print();
  }
}

}  // namespace

int main() {
  run_load(0.3);
  run_load(0.5);
  std::printf("\nPaper shape: fine-grained LB (DCP, MP-RDMA, IRN+AR) beats PFC+ECMP; among\n"
              "them DCP has the best tail (IRN pays for spurious retransmissions under\n"
              "AR, MP-RDMA for its bounded OOO tolerance).\n");
  return 0;
}
