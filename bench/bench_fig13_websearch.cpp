// Fig. 13: WebSearch workload on the two-layer CLOS — FCT slowdown (P50,
// P95) per flow-size bucket at average loads 0.3 and 0.5 for PFC(+ECMP),
// IRN(+AR), MP-RDMA and DCP(+AR).  The whole load x scheme matrix fans out
// across the sweep pool (DCP_JOBS) before any table is printed.

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

constexpr SchemeKind kKinds[] = {SchemeKind::kPfc, SchemeKind::kIrn, SchemeKind::kMpRdma,
                                 SchemeKind::kDcp};

// Non-const: percentile queries sort the underlying samples lazily.
void report_load(double load, std::vector<WebSearchResult>& results) {
  for (double pct : {50.0, 95.0}) {
    char title[96];
    std::snprintf(title, sizeof(title), "Fig 13: WebSearch load %.1f, P%.0f FCT slowdown", load,
                  pct);
    banner(title);
    Table t({"Flow size <=", "PFC (ECMP)", "IRN (AR)", "MP-RDMA", "DCP (AR)"});
    const auto edges = results[0].background.bucket_edges();
    std::vector<std::vector<double>> cols;
    for (auto& r : results) cols.push_back(r.background.per_bucket_percentile(pct));
    for (std::size_t b = 0; b < edges.size(); ++b) {
      bool any = false;
      for (auto& c : cols) any = any || c[b] > 0;
      if (!any) continue;
      const std::string lbl =
          edges[b] == UINT64_MAX ? ">last" : std::to_string(edges[b] / 1000) + " KB";
      std::vector<std::string> row{lbl};
      for (auto& c : cols) row.push_back(c[b] > 0 ? Table::num(c[b], 2) : "-");
      t.add_row(row);
    }
    std::vector<std::string> overall{"OVERALL"};
    for (auto& r : results) overall.push_back(Table::num(r.background.overall().percentile(pct), 2));
    t.add_row(overall);
    t.print();
  }
}

}  // namespace

int main() {
  const double loads[] = {0.3, 0.5};

  struct Trial {
    double load;
    SchemeKind k;
  };
  std::vector<Trial> trials;
  for (double load : loads) {
    for (SchemeKind k : kKinds) trials.push_back({load, k});
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  std::vector<WebSearchResult> results = pool.run(trials.size(), [&](std::size_t i) {
    WebSearchParams p;
    p.scheme = trials[i].k;
    p.load = trials[i].load;
    if (full_scale()) {
      p.clos.spines = 16;
      p.clos.leaves = 16;
      p.clos.hosts_per_leaf = 16;
      p.num_flows = 20000;
    } else {
      p.clos.spines = 4;
      p.clos.leaves = 4;
      p.clos.hosts_per_leaf = 4;
      p.num_flows = 500;
    }
    WebSearchResult r = run_websearch(p);
    agg.add(r.core);
    return r;
  });

  for (std::size_t l = 0; l < std::size(loads); ++l) {
    std::vector<WebSearchResult> slice(results.begin() + l * std::size(kKinds),
                                       results.begin() + (l + 1) * std::size(kKinds));
    report_load(loads[l], slice);
  }
  report_sweep(pool, agg);

  std::printf("\nPaper shape: fine-grained LB (DCP, MP-RDMA, IRN+AR) beats PFC+ECMP; among\n"
              "them DCP has the best tail (IRN pays for spurious retransmissions under\n"
              "AR, MP-RDMA for its bounded OOO tolerance).\n");
  return 0;
}
