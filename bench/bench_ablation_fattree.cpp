// Ablation: topology generality — the same WebSearch workload on the
// paper's two-tier CLOS and on a three-tier fat-tree (two independent
// adaptive-routing stages per direction, deeper reordering).  DCP's
// order-tolerance is topology-agnostic; IRN's spurious retransmissions
// get worse with more reordering stages.

#include <cstdio>
#include <vector>

#include "harness/report.h"
#include "harness/scheme.h"
#include "harness/sweep.h"
#include "stats/fct_stats.h"
#include "topo/clos.h"
#include "topo/fattree.h"
#include "workload/flowgen.h"

using namespace dcp;

namespace {

struct Row {
  double p50 = 0.0;
  double p95 = 0.0;
  std::uint64_t retx = 0;
  std::uint64_t timeouts = 0;
  bool all_done = false;
  CorePerf core;
};

Row harvest(Network& net) {
  Row r;
  FctStats st;
  for (const FlowRecord& rec : net.records()) {
    if (!rec.complete()) continue;
    st.add(rec, net.ideal_fct(rec.spec.src, rec.spec.dst, rec.spec.bytes));
    r.retx += rec.sender.retransmitted_packets;
    r.timeouts += rec.sender.timeouts;
  }
  r.p50 = st.overall().percentile(50);
  r.p95 = st.overall().percentile(95);
  r.all_done = net.all_flows_done();
  return r;
}

Row run(SchemeKind kind, bool fattree) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);
  SchemeSetup setup = make_scheme(kind);
  std::vector<Host*> hosts;
  if (fattree) {
    FatTreeParams p;
    p.k = full_scale() ? 8 : 4;
    p.sw = setup.sw;
    hosts = build_fattree(net, p).hosts;
  } else {
    ClosParams p;
    p.spines = 2;
    p.leaves = full_scale() ? 16 : 4;
    p.hosts_per_leaf = full_scale() ? 8 : 4;
    p.sw = setup.sw;
    hosts = build_clos(net, p).hosts;
  }
  apply_scheme(net, setup);

  FlowGenParams fg;
  fg.load = 0.5;
  fg.num_flows = full_scale() ? 4000 : 400;
  fg.msg_bytes = 4 * 1024 * 1024;
  generate_poisson_flows(net, hosts, SizeDist::websearch(), fg);
  CorePerfTimer timer(sim);
  net.run_until_done(seconds(10));
  Row r = harvest(net);
  r.core = timer.finish();
  return r;
}

}  // namespace

int main() {
  banner("Ablation: CLOS (2-tier) vs fat-tree (3-tier), WebSearch 0.5");

  struct Cfg {
    const char* label;
    SchemeKind k;
    bool ft;
  };
  const Cfg cfgs[] = {Cfg{"DCP  / CLOS", SchemeKind::kDcp, false},
                      Cfg{"DCP  / fat-tree", SchemeKind::kDcp, true},
                      Cfg{"IRN  / CLOS", SchemeKind::kIrn, false},
                      Cfg{"IRN  / fat-tree", SchemeKind::kIrn, true}};

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<Row> rows = pool.run(std::size(cfgs), [&](std::size_t i) {
    Row r = run(cfgs[i].k, cfgs[i].ft);
    agg.add(r.core);
    return r;
  });

  Table t({"Scheme / topology", "P50", "P95", "Retransmissions", "RTOs", "All done"});
  for (std::size_t i = 0; i < std::size(cfgs); ++i) {
    const Row& r = rows[i];
    t.add_row({cfgs[i].label, Table::num(r.p50, 2), Table::num(r.p95, 2), std::to_string(r.retx),
               std::to_string(r.timeouts), r.all_done ? "yes" : "NO"});
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nDCP never retransmits without loss on either fabric (R2 holds at any\n"
              "depth); IRN's spurious retransmissions grow with the extra reordering\n"
              "stage of the 3-tier fabric.\n");
  return 0;
}
