// Fig. 7: theoretical packet rate (Mpps) vs. out-of-order degree at a
// 300 MHz pipeline clock, measured by exercising the three tracking
// structures and counting their sequential access steps.

#include <cstdio>

#include "analysis/packet_rate_model.h"
#include "harness/report.h"

int main() {
  using namespace dcp;
  banner("Fig 7: theoretical packet rate vs OOO degree (300 MHz clock)");

  Table t({"OOO degree", "BDP-sized (Mpps)", "Linked chunk (Mpps)", "DCP (Mpps)"});
  for (const PacketRatePoint& p : packet_rate_sweep(448, 64, 300.0)) {
    t.add_row({std::to_string(p.ooo_degree), Table::num(p.bdp_bitmap_mpps, 1),
               Table::num(p.linked_chunk_mpps, 1), Table::num(p.dcp_mpps, 1)});
  }
  t.print();

  std::printf("\n50 Mpps sustains 400 Gbps at 1 KB MTU.  Paper shape: BDP-sized and DCP\n"
              "are flat (constant steps); the linked chunk degrades as the OOO degree\n"
              "grows (one pointer chase per 128-packet chunk) and falls below line rate.\n");
  return 0;
}
