// Fat-tree scaling benchmark: the sharded simulator on the topologies the
// per-shard arenas, adaptive windows and batched cross-shard drains were
// built for.  Two modes:
//
//   bench_scale --smoke          k=8 fat-tree, short websearch run,
//                                DCP_SHARDS 1 vs 2; asserts bit-identical
//                                digests + events_processed and nonzero
//                                arena accounting.  Fast enough for CI.
//   bench_scale [--merge FILE]   k=16 websearch run to >= 100M events with
//                                DCP_SHARDS 1 and 8 (identity checked),
//                                per-shard utilization, then a k=32 build
//                                gated on peak RSS < 8 GB.  With --merge,
//                                the entries are spliced into an existing
//                                BENCH_core.json (bench_core owns the rest
//                                of the file).
//
// Speedup gates are core-count-aware: on a single-core runner the window
// barriers make sharding *slower* than serial (everything serializes onto
// one thread plus handshake overhead), so the 2-shard smoke gate needs
// >= 4 hardware threads and the full-mode 8-shard >= 3x gate needs >= 8.
// Identity gates run unconditionally — determinism does not need cores.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/scheme.h"
#include "sim/shard.h"
#include "stats/core_perf.h"
#include "topo/fattree.h"
#include "topo/network.h"
#include "workload/flowgen.h"

namespace {

using namespace dcp;

// --- Run digest -------------------------------------------------------------

/// FNV-1a over every flow's completion record.  Any divergence in timing,
/// retransmission behaviour or delivery between DCP_SHARDS settings lands
/// in here — the sharded run must merge to the exact serial interleaving.
struct RunDigest {
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t flows_completed = 0;
  std::uint64_t events = 0;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  bool operator==(const RunDigest&) const = default;
};

struct ScaleRun {
  CorePerf perf;
  RunDigest digest;
  std::vector<double> shard_utilization;  // busy_ns / wall, per shard
};

/// One websearch-on-fat-tree measurement.  The configuration is identical
/// across `shards` values — same seed, same flow set, same max_time — so
/// the digest comparison is apples to apples.
ScaleRun scale_run(int k, int shards, std::size_t num_flows, Time max_time) {
  ShardGroup group(shards);
  Logger log(LogLevel::kOff);
  Network net(group, log);

  SchemeSetup s = make_scheme(SchemeKind::kDcp, SchemeOptions{});
  s.sw.inject_loss_rate = 0.005;
  FatTreeParams fp;
  fp.k = k;
  fp.sw = s.sw;
  FatTreeTopology topo = build_fattree(net, fp);
  apply_scheme(net, s);

  FlowGenParams fg;
  fg.load = 0.4;
  fg.num_flows = num_flows;
  fg.seed = 7;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);

  CorePerfTimer timer(group);
  net.run_until_done(max_time);
  ScaleRun r;
  r.perf = timer.finish();

  for (const FlowRecord& rec : net.records()) {
    if (rec.complete()) ++r.digest.flows_completed;
    r.digest.mix(static_cast<std::uint64_t>(rec.tx_done));
    r.digest.mix(static_cast<std::uint64_t>(rec.rx_done));
    r.digest.mix(rec.sender.data_packets_sent);
    r.digest.mix(rec.sender.retransmitted_packets);
    r.digest.mix(rec.sender.timeouts);
    r.digest.mix(rec.receiver.bytes_received);
    r.digest.mix(rec.receiver.out_of_order_packets);
  }
  r.digest.events = r.perf.events_processed;

  const double wall_ns = r.perf.wall_seconds * 1e9;
  for (int i = 0; i < group.size(); ++i) {
    r.shard_utilization.push_back(
        wall_ns > 0.0 ? static_cast<double>(group.busy_ns(i)) / wall_ns : 0.0);
  }
  return r;
}

void print_run(const char* name, const ScaleRun& r) {
  std::printf("%-28s events=%llu wall=%.3fs events/sec=%.3gM arena=%.1fMB rss=%.1fMB\n", name,
              static_cast<unsigned long long>(r.perf.events_processed), r.perf.wall_seconds,
              r.perf.events_per_sec() / 1e6, static_cast<double>(r.perf.arena_bytes) / 1e6,
              static_cast<double>(r.perf.peak_rss_bytes) / 1e6);
  if (r.shard_utilization.size() > 1) {
    std::printf("%-28s ", "  shard utilization");
    for (double u : r.shard_utilization) std::printf(" %.0f%%", u * 100.0);
    std::printf("\n");
  }
}

/// Identity gate: the sharded run must be bit-for-bit the serial run.
bool check_identical(const char* what, const ScaleRun& serial, const ScaleRun& sharded) {
  if (serial.digest == sharded.digest) {
    std::printf("%s: digests identical (%016llx), events identical (%llu)\n", what,
                static_cast<unsigned long long>(serial.digest.hash),
                static_cast<unsigned long long>(serial.digest.events));
    return true;
  }
  std::fprintf(stderr,
               "%s: DIVERGED  serial hash=%016llx events=%llu completed=%llu  "
               "sharded hash=%016llx events=%llu completed=%llu\n",
               what, static_cast<unsigned long long>(serial.digest.hash),
               static_cast<unsigned long long>(serial.digest.events),
               static_cast<unsigned long long>(serial.digest.flows_completed),
               static_cast<unsigned long long>(sharded.digest.hash),
               static_cast<unsigned long long>(sharded.digest.events),
               static_cast<unsigned long long>(sharded.digest.flows_completed));
  return false;
}

// --- BENCH_core.json splice -------------------------------------------------

/// Serializes one entry in export_core_perf_json's exact field layout so a
/// spliced file is indistinguishable from one bench_core wrote itself.
std::string entry_json(const CorePerfEntry& e) {
  char buf[1024];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "    {\n"
                "      \"name\": \"%s\",\n"
                "      \"events_processed\": %llu,\n"
                "      \"wall_seconds\": %.6f,\n"
                "      \"events_per_sec\": %.0f",
                e.name.c_str(), static_cast<unsigned long long>(e.perf.events_processed),
                e.perf.wall_seconds, e.perf.events_per_sec());
  out += buf;
  if (e.baseline_events_per_sec > 0.0) {
    std::snprintf(buf, sizeof buf,
                  ",\n      \"seed_events_per_sec\": %.0f,\n      \"speedup_vs_seed\": %.2f",
                  e.baseline_events_per_sec, e.perf.events_per_sec() / e.baseline_events_per_sec);
    out += buf;
  }
  if (e.perf.arena_bytes > 0) {
    std::snprintf(buf, sizeof buf, ",\n      \"arena_bytes\": %llu",
                  static_cast<unsigned long long>(e.perf.arena_bytes));
    out += buf;
  }
  if (e.perf.peak_rss_bytes > 0) {
    std::snprintf(buf, sizeof buf, ",\n      \"peak_rss_bytes\": %llu",
                  static_cast<unsigned long long>(e.perf.peak_rss_bytes));
    out += buf;
  }
  if (e.shards > 0) {
    std::snprintf(buf, sizeof buf, ",\n      \"shards\": %u,\n      \"hardware_threads\": %u",
                  e.shards, e.hardware_threads);
    out += buf;
  }
  out += "\n    }";
  return out;
}

/// Splices scale entries into an existing BENCH_core.json: drops any prior
/// scale_* entries (re-runs replace, not append), then inserts before the
/// benchmarks array's closing bracket.  The file format is fully owned by
/// export_core_perf_json, so a text splice is exact.
bool merge_into(const std::string& path, const std::vector<CorePerfEntry>& entries) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "--merge: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string doc = ss.str();

  // Drop stale scale_* entries: each spans from its "    {\n      \"name\":
  // \"scale_" line to the matching "    }" (plus a trailing comma if any).
  for (std::string::size_type at;
       (at = doc.find("    {\n      \"name\": \"scale_")) != std::string::npos;) {
    std::string::size_type end = doc.find("\n    }", at);
    if (end == std::string::npos) return false;
    end += std::strlen("\n    }");
    if (doc.compare(end, 1, ",") == 0) ++end;
    if (doc.compare(end, 1, "\n") == 0) ++end;
    doc.erase(at, end - at);
  }
  // A removed tail entry can leave ",\n  ]" behind; normalize.
  const std::string dangling = ",\n  ]";
  if (std::string::size_type at = doc.find(dangling); at != std::string::npos) {
    doc.replace(at, dangling.size(), "\n  ]");
  }

  const std::string close = "\n  ]";
  const std::string::size_type at = doc.find(close);
  if (at == std::string::npos) {
    std::fprintf(stderr, "--merge: no benchmarks array in %s\n", path.c_str());
    return false;
  }
  std::string insert;
  for (const CorePerfEntry& e : entries) insert += ",\n" + entry_json(e);
  doc.insert(at, insert);

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << doc;
  return true;
}

// --- Modes ------------------------------------------------------------------

int run_smoke() {
  // k=8: 128 hosts, 80 switches — builds in milliseconds, and the bounded
  // run keeps CI wall time down while still crossing every shard cut.
  const int kK = 8;
  const std::size_t kFlows = 256;
  const Time kMax = milliseconds(5);

  const ScaleRun serial = scale_run(kK, 1, kFlows, kMax);
  const ScaleRun sharded = scale_run(kK, 2, kFlows, kMax);
  print_run("smoke_fattree_k8", serial);
  print_run("smoke_fattree_k8_sharded", sharded);

  bool ok = check_identical("smoke k=8 shards 1 vs 2", serial, sharded);
  if (serial.perf.arena_bytes == 0 || sharded.perf.arena_bytes == 0) {
    std::fprintf(stderr, "smoke: arena accounting came back zero\n");
    ok = false;
  }
  const unsigned threads = std::thread::hardware_concurrency();
  if (threads >= 4) {
    const double speedup = sharded.perf.events_per_sec() / serial.perf.events_per_sec();
    std::printf("smoke speedup: %.2fx on %u hardware threads\n", speedup, threads);
    if (speedup < 1.2) {
      std::fprintf(stderr, "smoke: sharded %.2fx < 1.2x with %u threads\n", speedup, threads);
      ok = false;
    }
  } else {
    std::printf("smoke speedup gate skipped (%u hardware threads < 4)\n", threads);
  }
  std::printf("bench_scale --smoke %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}

int run_full(const char* merge_path) {
  const unsigned threads = std::thread::hardware_concurrency();
  bool ok = true;

  // k=16: 1024 hosts.  The flow count is sized so the run crosses the
  // 100M-event floor with margin (measured ~9-10k events per websearch
  // flow on this configuration).
  const int kK = 16;
  const std::size_t kFlows = 15000;
  const Time kMax = seconds(5);

  std::printf("k=16 fat-tree (%d hosts), %zu websearch flows, DCP_SHARDS=1...\n",
              kK * kK * kK / 4, kFlows);
  const ScaleRun serial = scale_run(kK, 1, kFlows, kMax);
  print_run("scale_fattree_k16", serial);
  if (serial.perf.events_processed < 100'000'000ull) {
    std::fprintf(stderr, "k=16 run processed %llu events < 100M floor\n",
                 static_cast<unsigned long long>(serial.perf.events_processed));
    ok = false;
  }

  std::printf("k=16 fat-tree, DCP_SHARDS=8...\n");
  const ScaleRun sharded = scale_run(kK, 8, kFlows, kMax);
  print_run("scale_fattree_k16_sharded", sharded);
  ok = check_identical("k=16 shards 1 vs 8", serial, sharded) && ok;

  const double speedup = sharded.perf.events_per_sec() / serial.perf.events_per_sec();
  if (threads >= 8) {
    std::printf("k=16 speedup: %.2fx on %u hardware threads\n", speedup, threads);
    if (speedup < 3.0) {
      std::fprintf(stderr, "k=16 sharded %.2fx < 3.0x with %u threads\n", speedup, threads);
      ok = false;
    }
  } else {
    std::printf("k=16 speedup %.2fx — gate skipped (%u hardware threads < 8)\n", speedup,
                threads);
  }

  // k=32: 8192 hosts, 1536 switches.  A short run — the gate is memory,
  // not throughput: build + route state + arenas must stay under 8 GB.
  // Runs last, so ru_maxrss (process-wide high water) covering it also
  // covers the smaller k=16 runs; the gate is conservative-safe.
  std::printf("k=32 fat-tree (%d hosts), memory smoke...\n", 32 * 32 * 32 / 4);
  const ScaleRun k32 = scale_run(32, 8, 2000, milliseconds(2));
  print_run("scale_fattree_k32_smoke", k32);
  if (k32.perf.peak_rss_bytes >= 8ull << 30) {
    std::fprintf(stderr, "k=32 peak RSS %.2f GB >= 8 GB\n",
                 static_cast<double>(k32.perf.peak_rss_bytes) / (1ull << 30));
    ok = false;
  }

  std::vector<CorePerfEntry> entries;
  entries.push_back({"scale_fattree_k16", serial.perf, 0.0});
  CorePerfEntry sh{"scale_fattree_k16_sharded", sharded.perf, serial.perf.events_per_sec()};
  sh.shards = 8;
  sh.hardware_threads = threads;
  entries.push_back(sh);
  CorePerfEntry k32e{"scale_fattree_k32_smoke", k32.perf, 0.0};
  k32e.shards = 8;
  k32e.hardware_threads = threads;
  entries.push_back(k32e);

  if (merge_path != nullptr) {
    const bool merged = merge_into(merge_path, entries);
    std::printf("merge into %s %s\n", merge_path, merged ? "done" : "FAILED");
    ok = ok && merged;
  } else {
    const bool wrote = export_core_perf_json("BENCH_scale.json", entries);
    std::printf("BENCH_scale.json %s\n", wrote ? "written" : "FAILED");
    ok = ok && wrote;
  }
  std::printf("bench_scale %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* merge_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--merge") == 0 && i + 1 < argc) {
      merge_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--merge BENCH_core.json]\n", argv[0]);
      return 2;
    }
  }
  return smoke ? run_smoke() : run_full(merge_path);
}
