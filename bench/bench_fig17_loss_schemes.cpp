// Fig. 17: loss recovery efficiency of DCP, RACK-TLP, IRN and the
// timeout-only scheme — goodput of a long-running flow under forced loss
// rates from 0 to 5% with ECMP.  All 28 rate x scheme trials fan out
// across the sweep pool (DCP_JOBS); results are indexed by trial, so the
// table is bit-identical to the old serial loop.

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

int main() {
  banner("Fig 17: goodput vs loss rate — DCP / RACK-TLP / IRN / Timeout");

  const double rates[] = {0.0, 0.0001, 0.001, 0.005, 0.01, 0.02, 0.05};
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kRackTlp, SchemeKind::kIrn,
                              SchemeKind::kTimeout};

  struct Trial {
    double rate;
    SchemeKind k;
  };
  std::vector<Trial> trials;
  for (double rate : rates) {
    for (SchemeKind k : kinds) trials.push_back({rate, k});
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<double> goodput = pool.run(trials.size(), [&](std::size_t i) {
    LongFlowParams p;
    p.scheme = trials[i].k;
    p.loss_rate = trials[i].rate;
    p.flow_bytes = full_scale() ? 100ull * 1000 * 1000 : 20ull * 1000 * 1000;
    p.max_time = milliseconds(full_scale() ? 500 : 100);
    const LongFlowResult r = run_long_flow(p);
    agg.add(r.core);
    return r.goodput_gbps;
  });

  Table t({"Loss rate", "DCP", "RACK-TLP", "IRN", "Timeout"});
  for (std::size_t r = 0; r < std::size(rates); ++r) {
    std::vector<std::string> row;
    char lbl[32];
    std::snprintf(lbl, sizeof(lbl), "%.2f%%", rates[r] * 100);
    row.push_back(lbl);
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      row.push_back(Table::num(goodput[r * std::size(kinds) + k], 2));
    }
    t.add_row(row);
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nPaper shape: DCP stays near line rate; RACK-TLP trails it (retransmission\n"
              "delayed one RTT); IRN degrades with re-lost retransmissions; the pure\n"
              "timeout scheme collapses fastest.\n");
  return 0;
}
