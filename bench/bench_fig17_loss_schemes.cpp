// Fig. 17: loss recovery efficiency of DCP, RACK-TLP, IRN and the
// timeout-only scheme — goodput of a long-running flow under forced loss
// rates from 0 to 5% with ECMP.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace dcp;

int main() {
  banner("Fig 17: goodput vs loss rate — DCP / RACK-TLP / IRN / Timeout");

  const double rates[] = {0.0, 0.0001, 0.001, 0.005, 0.01, 0.02, 0.05};
  Table t({"Loss rate", "DCP", "RACK-TLP", "IRN", "Timeout"});
  for (double rate : rates) {
    std::vector<std::string> row;
    char lbl[32];
    std::snprintf(lbl, sizeof(lbl), "%.2f%%", rate * 100);
    row.push_back(lbl);
    for (SchemeKind k :
         {SchemeKind::kDcp, SchemeKind::kRackTlp, SchemeKind::kIrn, SchemeKind::kTimeout}) {
      LongFlowParams p;
      p.scheme = k;
      p.loss_rate = rate;
      p.flow_bytes = full_scale() ? 100ull * 1000 * 1000 : 20ull * 1000 * 1000;
      p.max_time = milliseconds(full_scale() ? 500 : 100);
      row.push_back(Table::num(run_long_flow(p).goodput_gbps, 2));
    }
    t.add_row(row);
  }
  t.print();

  std::printf("\nPaper shape: DCP stays near line rate; RACK-TLP trails it (retransmission\n"
              "delayed one RTT); IRN degrades with re-lost retransmissions; the pure\n"
              "timeout scheme collapses fastest.\n");
  return 0;
}
