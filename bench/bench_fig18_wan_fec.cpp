// Fig. 18 (beyond the paper): WAN cross-region goodput — RTT x loss-rate x
// scheme, with the FEC tier swept across (k, m) geometries.  The scenario
// the erasure-coded tier is built for: ms-scale RTTs and percent-scale
// ambient loss, where every retransmission-based scheme pays at least one
// extra round trip per loss while FEC repairs up to m losses per group from
// parity already in flight.  All points fan out across the sweep pool
// (DCP_JOBS); `--smoke` runs a single small point per scheme for CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

struct SchemeAxis {
  SchemeKind kind;
  std::uint32_t fec_k;  // ignored unless kind == kFec
  std::uint32_t fec_m;
  const char* label;
};

constexpr SchemeAxis kSchemes[] = {
    {SchemeKind::kDcp, 0, 0, "DCP"},
    {SchemeKind::kIrn, 0, 0, "IRN"},
    {SchemeKind::kCx5, 0, 0, "GBN"},
    {SchemeKind::kFec, 4, 1, "FEC(4,1)"},
    {SchemeKind::kFec, 8, 2, "FEC(8,2)"},
    {SchemeKind::kFec, 16, 4, "FEC(16,4)"},
};

bool is_retrans_only(const SchemeAxis& s) { return s.kind != SchemeKind::kFec; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<Time> delays = {milliseconds(5), milliseconds(25)};  // one-way; RTT = ~2x
  std::vector<double> losses = {0.0, 0.01, 0.05};
  std::uint64_t flow_bytes = 25ull * 1000 * 1000;
  Time max_time = seconds(30);
  if (smoke) {
    delays = {milliseconds(5)};
    losses = {0.05};
    flow_bytes = 2ull * 1000 * 1000;
    max_time = seconds(10);
  }

  struct Trial {
    Time delay;
    double loss;
    SchemeAxis scheme;
  };
  std::vector<Trial> trials;
  for (Time d : delays) {
    for (double l : losses) {
      for (const SchemeAxis& s : kSchemes) trials.push_back({d, l, s});
    }
  }

  banner(smoke ? "Fig 18: WAN cross-region goodput (smoke)"
               : "Fig 18: WAN cross-region goodput — RTT x loss x scheme");

  SweepRunner pool;
  CorePerfAggregator agg;
  std::vector<WanFlowResult> results = pool.run(trials.size(), [&](std::size_t i) {
    const Trial& t = trials[i];
    WanFlowParams p;
    p.scheme = t.scheme.kind;
    p.opt.fec_k = t.scheme.fec_k > 0 ? t.scheme.fec_k : p.opt.fec_k;
    p.opt.fec_m = t.scheme.fec_m > 0 ? t.scheme.fec_m : p.opt.fec_m;
    p.wan.regions = 3;
    p.wan.hosts_per_region = smoke ? 2 : 4;
    p.wan.wan_delay = t.delay;
    p.wan.wan_loss_rate = t.loss;
    p.flow_bytes = flow_bytes;
    p.max_time = max_time;
    p.seed = 7 + i;
    WanFlowResult r = run_wan_flow(p);
    agg.add(r.core);
    return r;
  });

  const std::size_t per_point = std::size(kSchemes);
  std::size_t idx = 0;
  bool accept_checked = false;
  bool accept_ok = true;
  double accept_ratio = 0.0;
  for (Time d : delays) {
    char title[96];
    std::snprintf(title, sizeof(title), "WAN one-way delay %.0f ms (RTT ~%.0f ms)", to_us(d) / 1e3,
                  2 * to_us(d) / 1e3);
    banner(title);
    Table t({"Loss", "Scheme", "Goodput Gbps", "Done", "Wire drops", "Retx", "Parity",
             "Decode-rec", "NACK-rec"});
    for (double l : losses) {
      double best_fec = 0.0;
      double best_retrans = 0.0;
      for (std::size_t s = 0; s < per_point; ++s) {
        const WanFlowResult& r = results[idx + s];
        t.add_row({Table::num(l * 100, 1) + "%", kSchemes[s].label, Table::num(r.goodput_gbps, 3),
                   r.completed ? "yes" : "no", std::to_string(r.wire_dropped),
                   std::to_string(r.sender.retransmitted_packets),
                   std::to_string(r.sender.parity_packets_sent),
                   std::to_string(r.receiver.decode_recovered_packets),
                   std::to_string(r.receiver.nack_recovered_packets)});
        if (is_retrans_only(kSchemes[s])) {
          best_retrans = std::max(best_retrans, r.goodput_gbps);
        } else {
          best_fec = std::max(best_fec, r.goodput_gbps);
        }
      }
      // The acceptance point: >= 5% loss at >= 50 ms RTT, FEC must sustain
      // at least 2x the best retransmission-only scheme.
      if (l >= 0.05 && 2 * d >= milliseconds(50)) {
        accept_checked = true;
        accept_ratio = best_retrans > 0 ? best_fec / best_retrans : best_fec;
        if (best_fec < 2.0 * best_retrans) accept_ok = false;
      }
      idx += per_point;
    }
    t.print();
  }
  report_sweep(pool, agg);

  if (accept_checked) {
    std::printf("\nAcceptance (>=5%% loss, >=50 ms RTT): FEC / best-retransmission goodput "
                "= %.2fx (target >= 2x) — %s\n",
                accept_ratio, accept_ok ? "PASS" : "FAIL");
  }
  std::printf("\nShape: retransmission-only schemes pay >= 1 extra RTT per lost packet, so\n"
              "goodput collapses as loss x RTT grows; FEC repairs up to m losses per k-chunk\n"
              "group from parity already on the wire and only falls back to NACK repair for\n"
              "groups losing more than m chunks.\n");
  return accept_checked && !accept_ok ? 1 : 0;
}
