// Scheme robustness under injected faults: every fault kind x intensity x
// scheme cell runs one fault drill (a long cross-rack flow on a small
// leaf-spine fabric, see run_fault_drill) through the sweep pool and
// reports goodput, time-to-recover, goodput-dip depth and spurious
// retransmissions per cell.
//
// The zero-intensity column doubles as a regression check: an all-no-op
// FaultPlan must leave the run bit-identical to a fault-free baseline
// (the injector arms nothing), and the bench verifies that digest
// equality for every scheme before printing the table.
//
// `--smoke` shrinks the matrix to a single-trial CI smoke run.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

struct Intensity {
  const char* name;
  double rate;    // drop / corrupt / ho_loss
  Time dur;       // link_flap / blackhole window (0 = no-op)
  double frac;    // buffer_shrink remaining capacity (1 = no-op)
};

// Faults fire at 200us, after the flow has ramped, and (for windowed
// kinds) revert 400us later.
constexpr Time kOnset = microseconds(200);
constexpr Time kWindow = microseconds(400);

FaultPlan plan_for(FaultKind k, const Intensity& in) {
  FaultAction a;
  a.kind = k;
  a.at = kOnset;
  switch (k) {
    case FaultKind::kLinkFlap:
      a.duration = in.dur;
      a.sw = 0;  // spine 0 (switches() lists spines first)
      a.port = 0;
      a.drop_in_flight = true;
      break;
    case FaultKind::kDrop:
    case FaultKind::kCorrupt:
      a.duration = kWindow;
      a.rate = in.rate;
      a.sw = 0;
      break;
    case FaultKind::kHoLoss:
      a.duration = kWindow;
      a.rate = in.rate;
      break;
    case FaultKind::kBufferShrink:
      a.duration = kWindow;
      a.frac = in.frac;
      break;
    case FaultKind::kBlackhole:
      a.duration = in.dur;
      a.sw = 0;
      a.port = 0;
      break;
  }
  FaultPlan plan;
  plan.actions.push_back(a);
  return plan;
}

// Everything the run measured, bit-exact (%a prints doubles losslessly) —
// two runs with equal digests took the same trajectory.
std::string digest(const FaultDrillResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%d|%lld|%a|%llu|%llu|%llu|%llu|%llu|%llu|%llu",
                r.completed ? 1 : 0, static_cast<long long>(r.elapsed), r.goodput_gbps,
                static_cast<unsigned long long>(r.receiver.bytes_received),
                static_cast<unsigned long long>(r.sender.data_packets_sent),
                static_cast<unsigned long long>(r.sender.retransmitted_packets),
                static_cast<unsigned long long>(r.sender.spurious_retransmissions),
                static_cast<unsigned long long>(r.sender.timeouts),
                static_cast<unsigned long long>(r.sw.dropped_data),
                static_cast<unsigned long long>(r.sw.trimmed));
  return buf;
}

std::string cell_text(const FaultDrillResult& r) {
  char buf[96];
  if (r.fault_episodes.empty()) {
    std::snprintf(buf, sizeof(buf), "%.2f (baseline)", r.goodput_gbps);
    return buf;
  }
  const RecoveryStats::Episode& e = r.fault_episodes.front();
  if (e.recovered) {
    std::snprintf(buf, sizeof(buf), "%.2f ttr=%.0fus dip=%.0f%% sp=%llu", r.goodput_gbps,
                  to_us(e.time_to_recover), e.dip_frac * 100.0,
                  static_cast<unsigned long long>(e.spurious_retx));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ttr=never dip=%.0f%% sp=%llu", r.goodput_gbps,
                  e.dip_frac * 100.0, static_cast<unsigned long long>(e.spurious_retx));
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  banner(smoke ? "Fault robustness (smoke)" : "Fault robustness: fault x intensity x scheme");

  std::vector<FaultKind> kinds = {FaultKind::kLinkFlap,     FaultKind::kDrop,
                                  FaultKind::kCorrupt,      FaultKind::kHoLoss,
                                  FaultKind::kBufferShrink, FaultKind::kBlackhole};
  std::vector<Intensity> intensities = {
      {"zero", 0.0, 0, 1.0},
      {"low", 0.005, microseconds(100), 0.5},
      {"high", 0.05, microseconds(400), 0.05},
  };
  std::vector<SchemeKind> schemes = {SchemeKind::kDcp, SchemeKind::kIrn, SchemeKind::kCx5,
                                     SchemeKind::kMpRdma, SchemeKind::kFec};
  if (smoke) {
    kinds = {FaultKind::kDrop, FaultKind::kHoLoss};
    intensities = {{"zero", 0.0, 0, 1.0}, {"high", 0.05, microseconds(400), 0.05}};
    schemes = {SchemeKind::kDcp};
  }
  // ho_loss needs a far higher rate to matter: HO packets are a sliver of
  // traffic, and the control queue is small.
  auto effective = [&](FaultKind k, Intensity in) {
    if (k == FaultKind::kHoLoss && in.rate > 0.0) in.rate = in.rate >= 0.05 ? 0.5 : 0.1;
    return in;
  };

  FaultDrillParams base;
  base.flow_bytes = smoke ? 2ull * 1000 * 1000
                          : (full_scale() ? 32ull : 8ull) * 1000 * 1000;
  base.max_time = milliseconds(smoke ? 20 : 100);

  struct Cell {
    FaultKind kind;
    std::size_t intensity;
    std::size_t scheme;
    bool baseline = false;  // fault-free reference run for the digest check
  };
  std::vector<Cell> cells;
  for (FaultKind k : kinds) {
    for (std::size_t in = 0; in < intensities.size(); ++in) {
      for (std::size_t s = 0; s < schemes.size(); ++s) cells.push_back({k, in, s, false});
    }
  }
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    cells.push_back({FaultKind::kDrop, 0, s, true});
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<FaultDrillResult> results =
      pool.run(cells.size(), [&](std::size_t i) {
        FaultDrillParams p = base;
        p.scheme = schemes[cells[i].scheme];
        if (!cells[i].baseline) {
          p.faults = plan_for(cells[i].kind, effective(cells[i].kind, intensities[cells[i].intensity]));
        }
        FaultDrillResult r = run_fault_drill(p);
        agg.add(r.core);
        return r;
      });

  // Zero-intensity cells must be bit-identical to the fault-free baseline.
  std::vector<std::string> baseline_digest(schemes.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].baseline) baseline_digest[cells[i].scheme] = digest(results[i]);
  }
  bool zero_ok = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].baseline || intensities[cells[i].intensity].rate != 0.0 ||
        intensities[cells[i].intensity].dur != 0 || intensities[cells[i].intensity].frac != 1.0) {
      continue;
    }
    if (digest(results[i]) != baseline_digest[cells[i].scheme]) {
      zero_ok = false;
      std::printf("ZERO-INTENSITY MISMATCH: %s under no-op %s plan diverged from baseline\n",
                  scheme_name(schemes[cells[i].scheme]), fault_kind_name(cells[i].kind));
    }
  }

  std::vector<std::string> headers = {"Fault", "Intensity"};
  for (SchemeKind s : schemes) headers.push_back(scheme_name(s));
  Table t(headers);
  std::size_t idx = 0;
  for (FaultKind k : kinds) {
    for (std::size_t in = 0; in < intensities.size(); ++in) {
      std::vector<std::string> row = {fault_kind_name(k), intensities[in].name};
      for (std::size_t s = 0; s < schemes.size(); ++s) row.push_back(cell_text(results[idx++]));
      t.add_row(row);
    }
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nzero-intensity == fault-free baseline: %s\n", zero_ok ? "PASS" : "FAIL");
  std::printf("Cells: goodput Gbps, ttr = time to recover >=90%% of pre-fault goodput,\n"
              "dip = goodput dip depth, sp = spurious retransmissions in the episode.\n");
  return zero_ok ? 0 : 1;
}
