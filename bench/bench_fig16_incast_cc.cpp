// Fig. 16: the deep-dive incast workload — WebSearch at 0.5 load plus
// N-to-1 incast at 0.05 load — with and without DCQCN, for IRN, MP-RDMA
// and DCP.  Reports P50 and P99 FCT slowdown.  Without CC, DCP's HO storm
// amplifies congestion and its P99 is the worst; with DCQCN integrated,
// DCP+CC takes the lead (the paper's point that reliability and rate
// control are separable problems).  All six CC x scheme trials fan out
// across the sweep pool (DCP_JOBS).

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

constexpr SchemeKind kKinds[] = {SchemeKind::kIrn, SchemeKind::kMpRdma, SchemeKind::kDcp};

// Non-const: percentile queries sort the underlying samples lazily.
void report(bool with_cc, std::vector<WebSearchResult>& results) {
  banner(std::string("Fig 16: WebSearch 0.5 + incast 0.05, ") +
         (with_cc ? "WITH DCQCN" : "WITHOUT CC"));
  Table t({"Metric", "IRN", "MP-RDMA", "DCP"});
  for (double pct : {50.0, 99.0}) {
    std::vector<std::string> row{"P" + Table::num(pct, 0) + " slowdown"};
    for (auto& r : results) row.push_back(Table::num(r.background.overall().percentile(pct), 2));
    t.add_row(row);
  }
  std::vector<std::string> to{"timeouts"};
  for (auto& r : results) {
    to.push_back(std::to_string(r.timeouts_background + r.timeouts_incast));
  }
  t.add_row(to);
  t.print();
}

}  // namespace

int main() {
  struct Trial {
    bool with_cc;
    SchemeKind k;
  };
  std::vector<Trial> trials;
  for (bool cc : {false, true}) {
    for (SchemeKind k : kKinds) trials.push_back({cc, k});
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<WebSearchResult> results = pool.run(trials.size(), [&](std::size_t i) {
    WebSearchParams p;
    p.scheme = trials[i].k;
    p.opt.with_cc = trials[i].with_cc;
    p.load = 0.5;
    p.with_incast = true;
    if (full_scale()) {
      p.clos.spines = 16;
      p.clos.leaves = 16;
      p.clos.hosts_per_leaf = 16;
      p.num_flows = 10000;
      p.incast.fan_in = 128;
      p.incast.bursts = 20;
    } else {
      p.clos.spines = 4;
      p.clos.leaves = 4;
      p.clos.hosts_per_leaf = 4;
      p.num_flows = 400;
      p.incast.fan_in = 12;
      p.incast.bursts = 10;
    }
    p.incast.load = 0.05;
    // Reduced scale needs deeper per-sender bursts to overflow the 1 MB
    // queue; at paper scale 128 senders x 64 KB already do (and 256 KB x 128
    // would exhaust the whole shared buffer, which the paper's setup avoids).
    p.incast.bytes_per_sender = full_scale() ? 64 * 1024 : 256 * 1024;
    p.max_time = seconds(5);
    WebSearchResult r = run_websearch(p);
    agg.add(r.core);
    return r;
  });

  std::size_t base = 0;
  for (bool cc : {false, true}) {
    std::vector<WebSearchResult> slice(results.begin() + base,
                                       results.begin() + base + std::size(kKinds));
    report(cc, slice);
    base += std::size(kKinds);
  }
  report_sweep(pool, agg);

  std::printf("\nPaper shape: without CC, DCP wins P50 but has the worst P99 (incast HO\n"
              "storms); with DCQCN, DCP+CC achieves the best P99 (-31%%/-29%% vs MP-RDMA\n"
              "and IRN+CC).\n");
  return 0;
}
