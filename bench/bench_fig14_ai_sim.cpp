// Fig. 14: AI workloads in simulation — groups of servers on the CLOS run
// ring-AllReduce / AllToAll; reports per-group JCT against the ideal bound
// and the CDF of individual flow FCTs, for PFC / IRN / MP-RDMA / DCP.
// Both collectives x all four schemes fan out across the sweep pool
// (DCP_JOBS) before any table is printed.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "stats/percentile.h"

using namespace dcp;

namespace {

constexpr SchemeKind kKinds[] = {SchemeKind::kPfc, SchemeKind::kIrn, SchemeKind::kMpRdma,
                                 SchemeKind::kDcp};

void report_kind(const char* label, const std::vector<CollectiveResult>& results) {
  banner(std::string("Fig 14: ") + label + " JCT per group (ms)");
  Table t({"Group", "PFC", "IRN", "MP-RDMA", "DCP", "Ideal"});
  const std::size_t groups = results[0].jct_ms.size();
  for (std::size_t g = 0; g < groups; ++g) {
    std::vector<std::string> row{std::to_string(g + 1)};
    for (auto& r : results) row.push_back(Table::num(r.jct_ms[g], 2));
    row.push_back(Table::num(results[0].ideal_jct_ms, 2));
    t.add_row(row);
  }
  t.print();

  banner(std::string("Fig 14: ") + label + " per-flow FCT CDF (ms)");
  Table c({"Percentile", "PFC", "IRN", "MP-RDMA", "DCP"});
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::vector<std::string> row{"P" + Table::num(pct, 0)};
    for (auto& r : results) {
      PercentileEstimator pe;
      for (double v : r.flow_fct_ms) pe.add(v);
      row.push_back(Table::num(pe.percentile(pct), 3));
    }
    c.add_row(row);
  }
  c.print();
}

}  // namespace

int main() {
  const CollectiveKind collectives[] = {CollectiveKind::kAllReduce, CollectiveKind::kAllToAll};

  struct Trial {
    CollectiveKind kind;
    SchemeKind k;
  };
  std::vector<Trial> trials;
  for (CollectiveKind kind : collectives) {
    for (SchemeKind k : kKinds) trials.push_back({kind, k});
  }

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<CollectiveResult> results = pool.run(trials.size(), [&](std::size_t i) {
    CollectiveExpParams p;
    p.kind = trials[i].kind;
    p.scheme = trials[i].k;
    p.use_clos = true;
    if (full_scale()) {
      p.clos.spines = 16;
      p.clos.leaves = 16;
      p.clos.hosts_per_leaf = 16;
      p.groups = 16;
      p.members_per_group = 16;
      p.total_bytes = 300ull * 1000 * 1000;
    } else {
      p.clos.spines = 4;
      p.clos.leaves = 4;
      p.clos.hosts_per_leaf = 4;
      p.groups = 4;
      p.members_per_group = 4;
      p.total_bytes = 24ull * 1024 * 1024;
    }
    CollectiveResult r = run_collectives(p);
    agg.add(r.core);
    return r;
  });

  const char* labels[] = {"AllReduce", "AllToAll"};
  for (std::size_t c = 0; c < std::size(collectives); ++c) {
    const std::vector<CollectiveResult> slice(results.begin() + c * std::size(kKinds),
                                              results.begin() + (c + 1) * std::size(kKinds));
    report_kind(labels[c], slice);
  }
  report_sweep(pool, agg);

  std::printf("\nPaper shape: DCP has the lowest JCT (38%%/44%%/61%% below MP-RDMA/IRN/PFC\n"
              "for AllReduce; 5%%/45%%/46%% for AllToAll) because synchronized collectives\n"
              "are gated by the slowest flow and DCP has the best tail FCT.\n");
  return 0;
}
