// Ablation: the packet-trimming threshold.
//
// The paper leaves the data-queue trim threshold unspecified.  This sweep
// shows the trade-off on WebSearch + incast traffic: shallow thresholds
// bound queueing delay but trim aggressively and put DCP ACKs at risk
// (they are dropped above the threshold, §4.2); deep thresholds behave
// like a lossy fabric that rarely trims.

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

WebSearchResult run(std::uint64_t threshold) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);
  SchemeSetup setup = make_scheme(SchemeKind::kDcp);
  setup.sw.trim_threshold_bytes = threshold;
  ClosParams clos;
  clos.spines = 4;
  clos.leaves = 4;
  clos.hosts_per_leaf = full_scale() ? 16 : 4;
  clos.sw = setup.sw;
  ClosTopology topo = build_clos(net, clos);
  apply_scheme(net, setup);

  FlowGenParams fg;
  fg.load = 0.5;
  fg.num_flows = full_scale() ? 4000 : 400;
  fg.msg_bytes = 4 * 1024 * 1024;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);
  IncastParams inc;
  inc.fan_in = full_scale() ? 64 : 12;
  inc.bursts = 8;
  inc.load = 0.05;
  inc.bytes_per_sender = 256 * 1024;
  generate_incast(net, topo.hosts, inc);
  CorePerfTimer timer(sim);
  net.run_until_done(seconds(5));

  WebSearchResult r;
  r.core = timer.finish();
  for (const FlowRecord& rec : net.records()) {
    if (!rec.complete()) continue;
    const Time ideal = net.ideal_fct(rec.spec.src, rec.spec.dst, rec.spec.bytes);
    if (rec.spec.background) {
      r.background.add(rec, ideal);
      r.timeouts_background += rec.sender.timeouts;
    } else {
      r.incast_flows.add(rec, ideal);
      r.timeouts_incast += rec.sender.timeouts;
    }
  }
  r.sw = net.total_switch_stats();
  return r;
}

}  // namespace

int main() {
  banner("Ablation: trim threshold (WebSearch 0.5 + incast 0.05, DCP)");

  const std::uint64_t thresholds[] = {64ull * 1024, 256ull * 1024, 1024ull * 1024,
                                      4096ull * 1024};
  SweepRunner pool;
  CorePerfAggregator agg;
  std::vector<WebSearchResult> results = pool.run(std::size(thresholds), [&](std::size_t i) {
    WebSearchResult r = run(thresholds[i]);
    agg.add(r.core);
    return r;
  });

  Table t({"Threshold", "P50", "P99", "Trims", "ACK drops", "RTOs"});
  for (std::size_t i = 0; i < std::size(thresholds); ++i) {
    const std::uint64_t th = thresholds[i];
    WebSearchResult& r = results[i];
    t.add_row({Table::bytes_human(th), Table::num(r.background.overall().percentile(50), 2),
               Table::num(r.background.overall().percentile(99), 2), std::to_string(r.sw.trimmed),
               std::to_string(r.sw.dropped_ctrl),
               std::to_string(r.timeouts_background + r.timeouts_incast)});
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nShallower thresholds trim more and drop more DCP ACKs (which must be\n"
              "healed by receiver keepalives or the coarse timeout); the default (1 MB,\n"
              "matching the lossy baselines' drop depth) isolates recovery behaviour.\n");
  return 0;
}
