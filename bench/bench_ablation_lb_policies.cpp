// Ablation: load-balancing policy under DCP (the R2 claim).
//
// DCP is natively compatible with any packet-level LB.  This sweep runs
// the same WebSearch workload under ECMP (flow-level), flowlet switching
// (the "compromise" §2.2 mentions), uniform packet spraying and adaptive
// routing, plus IRN under the two packet-level policies for contrast:
// IRN's loss recovery misreads the reordering they create.

#include <cstdio>
#include <vector>

#include "harness/report.h"
#include "harness/scheme.h"
#include "harness/sweep.h"
#include "stats/fct_stats.h"
#include "topo/clos.h"
#include "workload/flowgen.h"

using namespace dcp;

namespace {

struct Row {
  double p50 = 0.0;
  double p95 = 0.0;
  std::uint64_t retx = 0;
  std::uint64_t timeouts = 0;
  CorePerf core;
};

Row run(SchemeKind kind, LbPolicy lb) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);
  SchemeSetup setup = make_scheme(kind);
  setup.sw.lb = lb;
  ClosParams clos;
  clos.spines = 4;
  clos.leaves = 4;
  clos.hosts_per_leaf = full_scale() ? 16 : 4;
  clos.sw = setup.sw;
  ClosTopology topo = build_clos(net, clos);
  apply_scheme(net, setup);

  FlowGenParams fg;
  fg.load = 0.5;
  fg.num_flows = full_scale() ? 4000 : 400;
  fg.msg_bytes = 4 * 1024 * 1024;
  generate_poisson_flows(net, topo.hosts, SizeDist::websearch(), fg);
  CorePerfTimer timer(sim);
  net.run_until_done(seconds(5));

  Row r;
  r.core = timer.finish();
  FctStats st;
  for (const FlowRecord& rec : net.records()) {
    if (!rec.complete()) continue;
    st.add(rec, net.ideal_fct(rec.spec.src, rec.spec.dst, rec.spec.bytes));
    r.retx += rec.sender.retransmitted_packets;
    r.timeouts += rec.sender.timeouts;
  }
  r.p50 = st.overall().percentile(50);
  r.p95 = st.overall().percentile(95);
  return r;
}

const char* lb_name(LbPolicy lb) {
  switch (lb) {
    case LbPolicy::kEcmp: return "ECMP";
    case LbPolicy::kFlowlet: return "Flowlet";
    case LbPolicy::kSpray: return "Spray";
    case LbPolicy::kAdaptive: return "Adaptive";
    case LbPolicy::kSourcePath: return "SourcePath";
  }
  return "?";
}

}  // namespace

int main() {
  // One sweep covers both tables: 4 DCP policies then 3 IRN contrasts.
  struct Trial {
    SchemeKind k;
    LbPolicy lb;
  };
  const Trial trials[] = {
      {SchemeKind::kDcp, LbPolicy::kEcmp},  {SchemeKind::kDcp, LbPolicy::kFlowlet},
      {SchemeKind::kDcp, LbPolicy::kSpray}, {SchemeKind::kDcp, LbPolicy::kAdaptive},
      {SchemeKind::kIrn, LbPolicy::kEcmp},  {SchemeKind::kIrn, LbPolicy::kSpray},
      {SchemeKind::kIrn, LbPolicy::kAdaptive}};

  SweepRunner pool;
  CorePerfAggregator agg;
  const std::vector<Row> rows = pool.run(std::size(trials), [&](std::size_t i) {
    Row r = run(trials[i].k, trials[i].lb);
    agg.add(r.core);
    return r;
  });

  banner("Ablation: DCP under every load-balancing policy (WebSearch 0.5)");
  Table t({"LB policy", "P50", "P95", "Retransmissions", "RTOs"});
  for (std::size_t i = 0; i < 4; ++i) {
    const Row& r = rows[i];
    t.add_row({lb_name(trials[i].lb), Table::num(r.p50, 2), Table::num(r.p95, 2),
               std::to_string(r.retx), std::to_string(r.timeouts)});
  }
  t.print();

  banner("Contrast: IRN under packet-level policies (spurious retransmissions)");
  Table c({"Scheme+LB", "P50", "P95", "Retransmissions", "RTOs"});
  for (std::size_t i = 4; i < std::size(trials); ++i) {
    const Row& r = rows[i];
    c.add_row({std::string("IRN+") + lb_name(trials[i].lb), Table::num(r.p50, 2),
               Table::num(r.p95, 2), std::to_string(r.retx), std::to_string(r.timeouts)});
  }
  c.print();
  report_sweep(pool, agg);

  std::printf("\nDCP's retransmission count is loss-only under every policy (R2); IRN\n"
              "retransmits spuriously as soon as the policy reorders packets, and the\n"
              "finer the balancing the more it pays.\n");
  return 0;
}
