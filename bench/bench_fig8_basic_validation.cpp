// Fig. 8: basic validation of the DCP-RNIC prototype — throughput of a
// long-running flow of 512 KB messages and latency of a 64 B message, for
// DCP, RNIC-GBN and (software) TCP over two directly cabled 100G hosts.

#include <cstdio>

#include "harness/report.h"
#include "harness/scheme.h"
#include "stats/goodput.h"
#include "topo/dumbbell.h"

using namespace dcp;

namespace {

struct Result {
  double tput_gbps;
  double latency_us;
};

Result run(SchemeKind kind) {
  Result r{};
  // Throughput: many 512 KB messages back to back.
  {
    Simulator sim;
    Logger log(LogLevel::kError);
    Network net(sim, log);
    SchemeSetup s = make_scheme(kind);
    BackToBack t = build_back_to_back(net);
    apply_scheme(net, s);
    FlowSpec spec;
    spec.src = t.a->id();
    spec.dst = t.b->id();
    spec.bytes = 64ull * 512 * 1024;  // 64 x 512 KB messages
    spec.msg_bytes = 512 * 1024;
    const FlowId id = net.start_flow(spec);
    net.run_until_done(seconds(1));
    r.tput_gbps = flow_goodput_gbps(net.record(id));
  }
  // Latency: a single 64 B message, measured sender-side (post -> completion).
  {
    Simulator sim;
    Logger log(LogLevel::kError);
    Network net(sim, log);
    SchemeSetup s = make_scheme(kind);
    BackToBack t = build_back_to_back(net);
    apply_scheme(net, s);
    FlowSpec spec;
    spec.src = t.a->id();
    spec.dst = t.b->id();
    spec.bytes = 64;
    const FlowId id = net.start_flow(spec);
    net.run_until_done(seconds(1));
    r.latency_us = to_us(net.record(id).fct());
  }
  return r;
}

}  // namespace

int main() {
  banner("Fig 8: basic validation — 2 hosts back-to-back, 100G");

  Table t({"Scheme", "Throughput (Gbps)", "64B latency (us)"});
  for (SchemeKind k : {SchemeKind::kDcp, SchemeKind::kCx5, SchemeKind::kTcp}) {
    const char* label = k == SchemeKind::kCx5 ? "RNIC-GBN" : scheme_name(k);
    const Result r = run(k);
    t.add_row({label, Table::num(r.tput_gbps, 1), Table::num(r.latency_us, 2)});
  }
  t.print();

  std::printf("\nPaper shape: DCP ~ RNIC-GBN (~97 Gbps, ~2 us), both far ahead of TCP\n"
              "(tens of Gbps, tens of us) — hardware offload is preserved.\n");
  return 0;
}
