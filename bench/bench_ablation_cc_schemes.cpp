// Ablation: congestion control × DCP (the paper's §3/§7 orthogonality
// claim — "DCP is microarchitecturally compatible with any CC scheme").
//
// Runs the incast-heavy deep-dive workload under DCP with no CC, with
// DCQCN (ECN-driven, the paper's integration) and with TIMELY (delay-
// based, needs no switch support at all), plus IRN+DCQCN for reference.

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

WebSearchResult run_one(SchemeKind k, bool with_cc, CcConfig::Type cc_type) {
  WebSearchParams p;
  p.scheme = k;
  p.opt.with_cc = with_cc;
  p.opt.cc_type = cc_type;
  p.load = 0.5;
  p.with_incast = true;
  if (full_scale()) {
    p.clos.spines = 16;
    p.clos.leaves = 16;
    p.clos.hosts_per_leaf = 16;
    p.num_flows = 8000;
    p.incast.fan_in = 128;
    p.incast.bursts = 15;
  } else {
    p.clos.spines = 4;
    p.clos.leaves = 4;
    p.clos.hosts_per_leaf = 4;
    p.num_flows = 400;
    p.incast.fan_in = 12;
    p.incast.bursts = 10;
  }
  p.incast.load = 0.05;
  // Reduced scale needs deeper per-sender bursts to overflow the 1 MB
  // queue; at paper scale 128 senders x 64 KB already do (and 256 KB x 128
  // would exhaust the whole shared buffer, which the paper's setup avoids).
  p.incast.bytes_per_sender = full_scale() ? 64 * 1024 : 256 * 1024;
  p.max_time = seconds(5);
  return run_websearch(p);
}

}  // namespace

int main() {
  banner("Ablation: DCP under different congestion controllers");

  struct Cfg {
    const char* label;
    SchemeKind k;
    bool cc;
    CcConfig::Type type;
  };
  const Cfg cfgs[] = {
      {"DCP (no CC)", SchemeKind::kDcp, false, CcConfig::Type::kDcqcn},
      {"DCP + DCQCN", SchemeKind::kDcp, true, CcConfig::Type::kDcqcn},
      {"DCP + TIMELY", SchemeKind::kDcp, true, CcConfig::Type::kTimely},
      {"IRN + DCQCN", SchemeKind::kIrn, true, CcConfig::Type::kDcqcn},
  };

  SweepRunner pool;
  CorePerfAggregator agg;
  std::vector<WebSearchResult> results = pool.run(std::size(cfgs), [&](std::size_t i) {
    WebSearchResult r = run_one(cfgs[i].k, cfgs[i].cc, cfgs[i].type);
    agg.add(r.core);
    return r;
  });

  Table t({"Configuration", "P50", "P95", "P99", "Trims", "RTOs"});
  for (std::size_t i = 0; i < std::size(cfgs); ++i) {
    WebSearchResult& r = results[i];
    t.add_row({cfgs[i].label, Table::num(r.background.overall().percentile(50), 2),
               Table::num(r.background.overall().percentile(95), 2),
               Table::num(r.background.overall().percentile(99), 2),
               std::to_string(r.sw.trimmed),
               std::to_string(r.timeouts_background + r.timeouts_incast)});
  }
  t.print();
  report_sweep(pool, agg);

  std::printf("\nDCP's retransmission path is identical under every controller — only\n"
              "the pacing changes.  Both DCQCN and TIMELY tame the incast trim storms\n"
              "that hurt the no-CC tail, confirming reliability and rate control are\n"
              "separable concerns (paper §3, §7).\n");
  return 0;
}
