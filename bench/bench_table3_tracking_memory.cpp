// Table 3: receiver-side packet-tracking memory overhead for BDP-sized
// bitmaps, linked chunks, and DCP's bitmap-free counters.  The per-QP
// numbers are measured from the actual tracking structures instantiated at
// the paper's intra-DC geometry (400 Gbps, 10 us RTT).

#include <cstdio>

#include "analysis/memory_model.h"
#include "harness/report.h"

int main() {
  using namespace dcp;
  banner("Table 3: memory overhead for packet tracking (400G, 10us RTT)");

  TrackingMemoryInputs in;
  const auto rows = {bdp_bitmap_row(in), linked_chunk_row(in), dcp_row(in)};

  Table t({"Scheme", "Per-QP (intra-DC)", "10k QPs (intra-DC)"});
  for (const TrackingMemoryRow& r : rows) {
    std::string per_qp = Table::bytes_human(r.per_qp_bytes_min);
    if (r.per_qp_bytes_min != r.per_qp_bytes_max) {
      per_qp += " ~ " + Table::bytes_human(r.per_qp_bytes_max);
    }
    std::string total = Table::bytes_human(r.total_10k_qps_min);
    if (r.total_10k_qps_min != r.total_10k_qps_max) {
      total += " ~ " + Table::bytes_human(r.total_10k_qps_max);
    }
    t.add_row({r.scheme, per_qp, total});
  }
  t.print();

  std::printf("\nBDP = %u packets.  Paper reference: 320B / 80B~320B / 32B per QP and\n"
              "3MB / 0.76MB~3MB / 0.3MB for 10k QPs.  The BDP bitmap exceeds typical\n"
              "RNIC SRAM (~2MB) as connections scale; DCP needs log2(n) bits.\n",
              bdp_packets(in));
  return 0;
}
