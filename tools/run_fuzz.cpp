// run_fuzz: seed-driven scenario fuzzer with oracle-armed runs and
// automatic shrinking.
//
//   run_fuzz --seed 1 --count 100 --out fuzz_repro.txt
//       Runs scenarios for seeds 1..100 (in parallel per DCP_JOBS).  On a
//       violation, shrinks the lowest failing seed's scenario to a minimal
//       repro, writes it to --out, and exits 1.
//
//   run_fuzz --replay fuzz_repro.txt
//       Re-runs a repro file and reports its verdict (exit 1 on violation).
//
//   run_fuzz --print 7
//       Dumps the scenario seed 7 generates, without running it.
//
//   run_fuzz --inject-bug dup-completion ...
//       Swaps in a DCP receiver with a deliberate duplicate-completion
//       defect (forces scheme=DCP).  --selftest uses this to prove the
//       fuzzer finds a seeded bug and shrinks it to <= 3 fault actions.
//
// Determinism: a seed fully determines its scenario and verdict; repro
// files contain no timestamps or host state, so the same failing seed
// yields a byte-identical repro under DCP_JOBS=1 and DCP_JOBS=8.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/broken.h"
#include "check/fuzzer.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

struct Cli {
  std::uint64_t seed = 1;
  std::size_t count = 100;
  std::string out = "fuzz_repro.txt";
  std::string replay;
  std::string inject;
  bool selftest = false;
  long print_seed = -1;
  long budget_ms = 0;  // 0 = no wall-clock budget
};

int usage() {
  std::fprintf(stderr,
               "usage: run_fuzz [--seed N] [--count N] [--out FILE] [--replay FILE]\n"
               "                [--print SEED] [--inject-bug dup-completion]\n"
               "                [--time-budget-ms N] [--selftest]\n");
  return 2;
}

FuzzOptions make_options(const Cli& cli) {
  FuzzOptions opt;
  if (cli.inject == "dup-completion") {
    opt.factory_override = std::make_shared<BrokenDcpFactory>();
  }
  return opt;
}

FuzzScenario scenario_for(const Cli& cli, std::uint64_t seed) {
  FuzzScenario s = generate_fuzz_scenario(seed);
  // The injected bug lives in a DCP receiver double; aim every scenario
  // at it rather than fuzzing schemes that cannot reach the defect.
  if (!cli.inject.empty()) s.scheme = SchemeKind::kDcp;
  return s;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << text;
}

/// Shrinks the violating scenario, writes the repro, prints the verdict.
int report_violation(const Cli& cli, const FuzzScenario& s, const FuzzVerdict& v) {
  std::printf("seed %llu violated: %s\n", static_cast<unsigned long long>(s.seed),
              v.message.c_str());
  const FuzzOptions opt = make_options(cli);
  ShrinkStats st;
  const FuzzScenario min = shrink_fuzz_scenario(s, opt, &st);
  const FuzzVerdict mv = run_fuzz_scenario(min, opt);
  std::printf("shrunk in %zu runs: %zu -> %zu fault actions, %zu -> %zu flows\n", st.runs,
              st.actions_before, st.actions_after, st.flows_before, st.flows_after);
  write_file(cli.out, write_fuzz_repro(min, mv));
  std::printf("repro written to %s\n", cli.out.c_str());
  return 1;
}

int run_batch(const Cli& cli) {
  const FuzzOptions opt = make_options(cli);
  SweepRunner pool;
  pool.set_progress(false);
  const auto t0 = std::chrono::steady_clock::now();

  // Batches of one pool-width each: parallel inside a batch, budget check
  // between batches.  Verdicts are keyed by seed, so the first failing
  // *seed* (not the first failing worker) is the one reported.
  const std::size_t batch = pool.jobs();
  std::size_t ran = 0;
  for (std::size_t base = 0; base < cli.count; base += batch) {
    const std::size_t n = std::min(batch, cli.count - base);
    auto verdicts = pool.run(n, [&](std::size_t i) {
      return run_fuzz_scenario(scenario_for(cli, cli.seed + base + i), opt);
    });
    ran += n;
    for (std::size_t i = 0; i < n; ++i) {
      if (verdicts[i].violated) {
        return report_violation(cli, scenario_for(cli, cli.seed + base + i), verdicts[i]);
      }
    }
    if (cli.budget_ms > 0) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      if (ms >= cli.budget_ms) break;
    }
  }
  std::printf("%zu scenarios (seeds %llu..%llu): all invariants held\n", ran,
              static_cast<unsigned long long>(cli.seed),
              static_cast<unsigned long long>(cli.seed + ran - 1));
  return 0;
}

int run_replay(const Cli& cli) {
  std::ifstream f(cli.replay, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "run_fuzz: cannot read %s\n", cli.replay.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  std::string err;
  auto s = parse_fuzz_scenario(ss.str(), &err);
  if (!s) {
    std::fprintf(stderr, "run_fuzz: %s: %s\n", cli.replay.c_str(), err.c_str());
    return 2;
  }
  const FuzzVerdict v = run_fuzz_scenario(*s, make_options(cli));
  if (!v.violated) {
    std::printf("replay of %s: all invariants held\n", cli.replay.c_str());
    return 0;
  }
  std::printf("replay of %s: %s\n", cli.replay.c_str(), v.message.c_str());
  if (!v.trace.empty()) std::printf("%s", v.trace.c_str());
  return 1;
}

/// Proves the pipeline end to end: a seeded duplicate-completion bug is
/// found by fuzzing, shrunk to <= 3 fault actions, and the written repro
/// replays to the same violation.
int run_selftest(Cli cli) {
  cli.inject = "dup-completion";
  const FuzzOptions opt = make_options(cli);

  FuzzScenario found;
  FuzzVerdict fv;
  bool hit = false;
  for (std::uint64_t seed = cli.seed; seed < cli.seed + 200; ++seed) {
    const FuzzScenario s = scenario_for(cli, seed);
    const FuzzVerdict v = run_fuzz_scenario(s, opt);
    if (v.violated) {
      found = s;
      fv = v;
      hit = true;
      break;
    }
  }
  if (!hit) {
    std::fprintf(stderr, "selftest: injected bug not found in 200 seeds\n");
    return 1;
  }
  if (fv.invariant != "exactly-once-completion") {
    std::fprintf(stderr, "selftest: expected exactly-once-completion, got %s\n",
                 fv.invariant.c_str());
    return 1;
  }
  std::printf("selftest: seed %llu trips the injected bug (%s)\n",
              static_cast<unsigned long long>(found.seed), fv.invariant.c_str());

  ShrinkStats st;
  const FuzzScenario min = shrink_fuzz_scenario(found, opt, &st);
  std::printf("selftest: shrunk in %zu runs to %zu fault actions, %zu flows\n", st.runs,
              st.actions_after, st.flows_after);
  if (min.faults.actions.size() > 3) {
    std::fprintf(stderr, "selftest: shrunk plan still has %zu actions (> 3)\n",
                 min.faults.actions.size());
    return 1;
  }

  const FuzzVerdict mv = run_fuzz_scenario(min, opt);
  const std::string repro = write_fuzz_repro(min, mv);
  write_file(cli.out, repro);
  std::string err;
  auto parsed = parse_fuzz_scenario(repro, &err);
  if (!parsed) {
    std::fprintf(stderr, "selftest: repro does not parse back: %s\n", err.c_str());
    return 1;
  }
  if (!(*parsed == min)) {
    std::fprintf(stderr, "selftest: repro round-trip changed the scenario\n");
    return 1;
  }
  const FuzzVerdict rv = run_fuzz_scenario(*parsed, opt);
  if (!rv.violated || rv.invariant != fv.invariant) {
    std::fprintf(stderr, "selftest: repro replay did not reproduce %s\n", fv.invariant.c_str());
    return 1;
  }
  std::printf("selftest: repro (%s) replays to the same violation — PASS\n", cli.out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--seed") {
      const char* v = next();
      if (!v) return usage();
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--count") {
      const char* v = next();
      if (!v) return usage();
      cli.count = std::strtoull(v, nullptr, 10);
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return usage();
      cli.out = v;
    } else if (a == "--replay") {
      const char* v = next();
      if (!v) return usage();
      cli.replay = v;
    } else if (a == "--inject-bug") {
      const char* v = next();
      if (!v || std::strcmp(v, "dup-completion") != 0) return usage();
      cli.inject = v;
    } else if (a == "--print") {
      const char* v = next();
      if (!v) return usage();
      cli.print_seed = std::strtol(v, nullptr, 10);
    } else if (a == "--time-budget-ms") {
      const char* v = next();
      if (!v) return usage();
      cli.budget_ms = std::strtol(v, nullptr, 10);
    } else if (a == "--selftest") {
      cli.selftest = true;
    } else {
      return usage();
    }
  }

  if (cli.print_seed >= 0) {
    const FuzzScenario s = scenario_for(cli, static_cast<std::uint64_t>(cli.print_seed));
    FuzzVerdict none;
    std::printf("%s", write_fuzz_repro(s, none).c_str());
    return 0;
  }
  if (cli.selftest) return run_selftest(cli);
  if (!cli.replay.empty()) return run_replay(cli);
  if (cli.count == 0) return usage();
  return run_batch(cli);
}
