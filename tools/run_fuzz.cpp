// run_fuzz: seed-driven scenario fuzzer with oracle-armed runs and
// automatic shrinking.
//
//   run_fuzz --seed 1 --count 100 --out fuzz_repro.txt
//       Runs scenarios for seeds 1..100 (in parallel per DCP_JOBS).  On a
//       violation, shrinks the lowest failing seed's scenario to a minimal
//       repro, writes it to --out, and exits 1.
//
//   run_fuzz --replay fuzz_repro.txt
//       Re-runs a repro file and reports its verdict (exit 1 on violation).
//
//   run_fuzz --print 7
//       Dumps the scenario seed 7 generates, without running it.
//
//   run_fuzz --inject-bug dup-completion ...
//       Swaps in a DCP receiver with a deliberate duplicate-completion
//       defect (forces scheme=DCP).  --selftest uses this to prove the
//       fuzzer finds a seeded bug and shrinks it to <= 3 fault actions.
//
// Determinism: a seed fully determines its scenario and verdict; repro
// files contain no timestamps or host state, so the same failing seed
// yields a byte-identical repro under DCP_JOBS=1 and DCP_JOBS=8.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/broken.h"
#include "check/fuzzer.h"
#include "harness/checkpoint.h"
#include "harness/sweep.h"

using namespace dcp;

namespace {

struct Cli {
  std::uint64_t seed = 1;
  std::size_t count = 100;
  std::string out = "fuzz_repro.txt";
  std::string replay;
  std::string inject;
  bool selftest = false;
  bool no_snapshot = false;  // cold-run every shrink probe
  long print_seed = -1;
  long budget_ms = 0;   // 0 = no wall-clock budget
  double at_time_us = -1;  // --at-time: time-travel point for --replay
};

int usage() {
  std::fprintf(stderr,
               "usage: run_fuzz [--seed N] [--count N] [--out FILE] [--replay FILE]\n"
               "                [--print SEED] [--inject-bug dup-completion]\n"
               "                [--time-budget-ms N] [--selftest] [--no-snapshot]\n"
               "                [--at-time US]   (with --replay: pause the replay at\n"
               "                                 t=US microseconds, dump the world state\n"
               "                                 and recent event trace, prove the\n"
               "                                 snapshot round-trip, then finish)\n");
  return 2;
}

FuzzOptions make_options(const Cli& cli) {
  FuzzOptions opt;
  if (cli.inject == "dup-completion") {
    opt.factory_override = std::make_shared<BrokenDcpFactory>();
  }
  opt.use_snapshots = !cli.no_snapshot;
  return opt;
}

FuzzScenario scenario_for(const Cli& cli, std::uint64_t seed) {
  FuzzScenario s = generate_fuzz_scenario(seed);
  // The injected bug lives in a DCP receiver double; aim every scenario
  // at it rather than fuzzing schemes that cannot reach the defect.
  if (!cli.inject.empty()) s.scheme = SchemeKind::kDcp;
  return s;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << text;
}

/// Shrinks the violating scenario, writes the repro, prints the verdict.
int report_violation(const Cli& cli, const FuzzScenario& s, const FuzzVerdict& v) {
  std::printf("seed %llu violated: %s\n", static_cast<unsigned long long>(s.seed),
              v.message.c_str());
  const FuzzOptions opt = make_options(cli);
  ShrinkStats st;
  const FuzzScenario min = shrink_fuzz_scenario(s, opt, &st);
  const FuzzVerdict mv = run_fuzz_scenario(min, opt);
  std::printf("shrunk in %zu runs: %zu -> %zu fault actions, %zu -> %zu flows\n", st.runs,
              st.actions_before, st.actions_after, st.flows_before, st.flows_after);
  write_file(cli.out, write_fuzz_repro(min, mv));
  std::printf("repro written to %s\n", cli.out.c_str());
  return 1;
}

int run_batch(const Cli& cli) {
  const FuzzOptions opt = make_options(cli);
  SweepRunner pool;
  pool.set_progress(false);
  const auto t0 = std::chrono::steady_clock::now();

  // Batches of one pool-width each: parallel inside a batch, budget check
  // between batches.  Verdicts are keyed by seed, so the first failing
  // *seed* (not the first failing worker) is the one reported.
  const std::size_t batch = pool.jobs();
  std::size_t ran = 0;
  for (std::size_t base = 0; base < cli.count; base += batch) {
    const std::size_t n = std::min(batch, cli.count - base);
    auto verdicts = pool.run(n, [&](std::size_t i) {
      return run_fuzz_scenario(scenario_for(cli, cli.seed + base + i), opt);
    });
    ran += n;
    for (std::size_t i = 0; i < n; ++i) {
      if (verdicts[i].violated) {
        return report_violation(cli, scenario_for(cli, cli.seed + base + i), verdicts[i]);
      }
    }
    if (cli.budget_ms > 0) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      if (ms >= cli.budget_ms) break;
    }
  }
  std::printf("%zu scenarios (seeds %llu..%llu): all invariants held\n", ran,
              static_cast<unsigned long long>(cli.seed),
              static_cast<unsigned long long>(cli.seed + ran - 1));
  return 0;
}

/// Time-travel debugging: rebuild the repro's world, run it to t (a
/// barrier-safe point), dump flow progress and the oracle's recent event
/// trace, prove the snapshot round-trip is bit-exact, then finish the run.
int run_time_travel(const Cli& cli, const FuzzScenario& s) {
  const FuzzOptions opt = make_options(cli);
  const Time t = microseconds(cli.at_time_us);
  SimWorld w(fuzz_world_spec(s, opt));
  w.run_to(t);

  std::printf("state of %s at t=%.9gus (%llu events executed):\n", cli.replay.c_str(),
              to_us(t), static_cast<unsigned long long>(w.events_processed()));
  for (const FlowRecord& r : w.net().records()) {
    const SenderTransport* snd = w.net().host(r.spec.src)->sender(r.spec.id);
    std::printf("  flow %llu: %llu bytes",
                static_cast<unsigned long long>(r.spec.id),
                static_cast<unsigned long long>(r.spec.bytes));
    if (r.tx_done >= 0) {
      std::printf(", complete (tx_done=%.9gus rx_done=%.9gus)", to_us(r.tx_done),
                  to_us(r.rx_done));
    } else if (snd != nullptr && snd->start_time() >= 0) {
      const SenderStats& st = snd->stats();
      std::printf(", in flight: sent=%llu retx=%llu timeouts=%llu ho=%llu",
                  static_cast<unsigned long long>(st.data_packets_sent),
                  static_cast<unsigned long long>(st.retransmitted_packets),
                  static_cast<unsigned long long>(st.timeouts),
                  static_cast<unsigned long long>(st.ho_received));
    } else {
      std::printf(", not started (start=%.9gus)", to_us(r.spec.start_time));
    }
    std::printf("\n");
  }
  if (w.oracle() != nullptr) {
    const std::string trace = w.oracle()->trace_slice(20);
    if (!trace.empty()) std::printf("recent events:\n%s", trace.c_str());
  }

  // Prove the round-trip: a fresh world restored from this point must
  // finish with a bit-identical digest and event count.
  SnapshotImage img;
  std::string err;
  if (!w.save(img, &err)) {
    std::printf("snapshot: unavailable (%s); continuing without round-trip check\n",
                err.c_str());
    w.run_until_done();
    const FuzzVerdict v = w.finalize_verdict();
    std::printf("verdict: %s\n", v.violated ? v.message.c_str() : "all invariants held");
    return v.violated ? 1 : 0;
  }
  std::printf("snapshot: %zu state bytes at t=%.9gus\n", img.state.size(), to_us(img.at));

  SimWorld resumed(fuzz_world_spec(s, opt));
  if (!resumed.restore(img, /*allow_spec_delta=*/false, &err)) {
    std::fprintf(stderr, "run_fuzz: restore failed: %s\n", err.c_str());
    return 2;
  }
  w.run_until_done();
  resumed.run_until_done();
  const WorldDigest a = w.digest();
  const WorldDigest b = resumed.digest();
  if (a != b) {
    std::fprintf(stderr,
                 "run_fuzz: NON-DETERMINISTIC RESUME: digest %016llx/%llu vs %016llx/%llu\n",
                 static_cast<unsigned long long>(a.value),
                 static_cast<unsigned long long>(a.events),
                 static_cast<unsigned long long>(b.value),
                 static_cast<unsigned long long>(b.events));
    return 2;
  }
  std::printf("resume check: digest %016llx, %llu events — restored run bit-identical\n",
              static_cast<unsigned long long>(a.value),
              static_cast<unsigned long long>(a.events));
  const FuzzVerdict v = resumed.finalize_verdict();
  std::printf("verdict: %s\n", v.violated ? v.message.c_str() : "all invariants held");
  return v.violated ? 1 : 0;
}

int run_replay(const Cli& cli) {
  std::ifstream f(cli.replay, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "run_fuzz: cannot read %s\n", cli.replay.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  std::string err;
  auto s = parse_fuzz_scenario(ss.str(), &err);
  if (!s) {
    std::fprintf(stderr, "run_fuzz: %s: %s\n", cli.replay.c_str(), err.c_str());
    return 2;
  }
  if (cli.at_time_us >= 0) return run_time_travel(cli, *s);
  const FuzzVerdict v = run_fuzz_scenario(*s, make_options(cli));
  if (!v.violated) {
    std::printf("replay of %s: all invariants held\n", cli.replay.c_str());
    return 0;
  }
  std::printf("replay of %s: %s\n", cli.replay.c_str(), v.message.c_str());
  if (!v.trace.empty()) std::printf("%s", v.trace.c_str());
  return 1;
}

/// Proves the pipeline end to end: a seeded duplicate-completion bug is
/// found by fuzzing, shrunk to <= 3 fault actions, and the written repro
/// replays to the same violation.
int run_selftest(Cli cli) {
  cli.inject = "dup-completion";
  const FuzzOptions opt = make_options(cli);

  FuzzScenario found;
  FuzzVerdict fv;
  bool hit = false;
  for (std::uint64_t seed = cli.seed; seed < cli.seed + 200; ++seed) {
    const FuzzScenario s = scenario_for(cli, seed);
    const FuzzVerdict v = run_fuzz_scenario(s, opt);
    if (v.violated) {
      found = s;
      fv = v;
      hit = true;
      break;
    }
  }
  if (!hit) {
    std::fprintf(stderr, "selftest: injected bug not found in 200 seeds\n");
    return 1;
  }
  if (fv.invariant != "exactly-once-completion") {
    std::fprintf(stderr, "selftest: expected exactly-once-completion, got %s\n",
                 fv.invariant.c_str());
    return 1;
  }
  std::printf("selftest: seed %llu trips the injected bug (%s)\n",
              static_cast<unsigned long long>(found.seed), fv.invariant.c_str());

  ShrinkStats st;
  const FuzzScenario min = shrink_fuzz_scenario(found, opt, &st);
  std::printf("selftest: shrunk in %zu runs to %zu fault actions, %zu flows\n", st.runs,
              st.actions_after, st.flows_after);
  if (min.faults.actions.size() > 3) {
    std::fprintf(stderr, "selftest: shrunk plan still has %zu actions (> 3)\n",
                 min.faults.actions.size());
    return 1;
  }

  const FuzzVerdict mv = run_fuzz_scenario(min, opt);
  const std::string repro = write_fuzz_repro(min, mv);
  write_file(cli.out, repro);
  std::string err;
  auto parsed = parse_fuzz_scenario(repro, &err);
  if (!parsed) {
    std::fprintf(stderr, "selftest: repro does not parse back: %s\n", err.c_str());
    return 1;
  }
  if (!(*parsed == min)) {
    std::fprintf(stderr, "selftest: repro round-trip changed the scenario\n");
    return 1;
  }
  const FuzzVerdict rv = run_fuzz_scenario(*parsed, opt);
  if (!rv.violated || rv.invariant != fv.invariant) {
    std::fprintf(stderr, "selftest: repro replay did not reproduce %s\n", fv.invariant.c_str());
    return 1;
  }
  std::printf("selftest: repro (%s) replays to the same violation — PASS\n", cli.out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--seed") {
      const char* v = next();
      if (!v) return usage();
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--count") {
      const char* v = next();
      if (!v) return usage();
      cli.count = std::strtoull(v, nullptr, 10);
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return usage();
      cli.out = v;
    } else if (a == "--replay") {
      const char* v = next();
      if (!v) return usage();
      cli.replay = v;
    } else if (a == "--inject-bug") {
      const char* v = next();
      if (!v || std::strcmp(v, "dup-completion") != 0) return usage();
      cli.inject = v;
    } else if (a == "--print") {
      const char* v = next();
      if (!v) return usage();
      cli.print_seed = std::strtol(v, nullptr, 10);
    } else if (a == "--time-budget-ms") {
      const char* v = next();
      if (!v) return usage();
      cli.budget_ms = std::strtol(v, nullptr, 10);
    } else if (a == "--at-time") {
      const char* v = next();
      if (!v) return usage();
      cli.at_time_us = std::strtod(v, nullptr);
    } else if (a == "--no-snapshot") {
      cli.no_snapshot = true;
    } else if (a == "--selftest") {
      cli.selftest = true;
    } else {
      return usage();
    }
  }

  if (cli.print_seed >= 0) {
    const FuzzScenario s = scenario_for(cli, static_cast<std::uint64_t>(cli.print_seed));
    FuzzVerdict none;
    std::printf("%s", write_fuzz_repro(s, none).c_str());
    return 0;
  }
  if (cli.selftest) return run_selftest(cli);
  if (!cli.replay.empty()) return run_replay(cli);
  if (cli.count == 0) return usage();
  return run_batch(cli);
}
