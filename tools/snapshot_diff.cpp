// Diagnostic: finds where a restored world first diverges from the cold
// run.  Runs a warm (restored-at-T) and a cold world in lockstep,
// snapshotting both at each barrier point; on the first mismatched image
// it reports the byte offset and the nearest module label magic, which
// identifies the module whose state drifted.
//
//   ./tools/snapshot_diff [scheme] [T_us] [step_us] [end_us]

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "harness/checkpoint.h"

namespace dcp {
namespace {

struct KnownLabel {
  std::uint32_t magic;
  const char* name;
};

constexpr KnownLabel kLabels[] = {
    {0xC4A17E1, "Channel"},        {0x9047, "Port"},
    {0xD3FC17, "DwrrScheduler"},   {0x51117C4, "Switch"},
    {0xDCC41, "DcqcnRp"},          {0x713E1B, "Timely"},
    {0x5E4D00, "SenderTransport"}, {0x4ECF00, "ReceiverTransport"},
    {0x121C, "RnicScheduler"},     {0x4057, "Host"},
    {0x4E7733, "Network"},         {0xFA1737, "FaultInjector"},
    {0x02AC1E, "InvariantOracle"},
};

bool g_faulted = false;
std::int64_t g_seed = -1;  // >= 0: use generate_fuzz_scenario(seed) instead

FuzzScenario scenario(SchemeKind k) {
  if (g_seed >= 0) return generate_fuzz_scenario(static_cast<std::uint64_t>(g_seed));
  FuzzScenario s;
  s.seed = 42;
  s.scheme = k;
  s.spines = 2;
  s.leaves = 4;
  s.hosts_per_leaf = 2;
  s.max_time = milliseconds(5);
  s.flows = {
      {0, 5, 64 * 1024, 4096, microseconds(5)},
      {2, 7, 24 * 1024, 0, microseconds(20)},
      {6, 1, 96 * 1024, 16384, microseconds(40)},
      {4, 3, 8 * 1024, 4096, microseconds(120)},
  };
  if (g_faulted) {
    auto add = [&](FaultKind kind, double at_us, double dur_us, double rate) {
      FaultAction a;
      a.kind = kind;
      a.at = microseconds(at_us);
      a.duration = microseconds(dur_us);
      a.rate = rate;
      s.faults.actions.push_back(a);
    };
    add(FaultKind::kDrop, 30, 120, 0.05);
    add(FaultKind::kHoLoss, 50, 80, 0.3);
    add(FaultKind::kCorrupt, 80, 60, 0.02);
    FaultAction flap;
    flap.kind = FaultKind::kLinkFlap;
    flap.at = microseconds(70);
    flap.duration = microseconds(50);
    flap.drop_in_flight = true;
    flap.sw = 2;
    s.faults.actions.push_back(flap);
    FaultAction shrink;
    shrink.kind = FaultKind::kBufferShrink;
    shrink.at = microseconds(45);
    shrink.duration = microseconds(150);
    shrink.frac = 0.3;
    s.faults.actions.push_back(shrink);
  }
  return s;
}

const char* label_before(const std::vector<std::uint8_t>& state, std::size_t off) {
  const char* best = "<none>";
  std::size_t best_at = 0;
  for (std::size_t i = 0; i + 4 <= state.size() && i <= off; ++i) {
    std::uint32_t v;
    std::memcpy(&v, state.data() + i, 4);
    for (const KnownLabel& l : kLabels) {
      if (v == l.magic && i >= best_at) {
        best = l.name;
        best_at = i;
      }
    }
  }
  return best;
}

void diff_images(const SnapshotImage& warm, const SnapshotImage& cold) {
  if (warm.state.size() != cold.state.size()) {
    std::printf("  state size differs: warm %zu vs cold %zu bytes\n",
                warm.state.size(), cold.state.size());
  }
  const std::size_t n = std::min(warm.state.size(), cold.state.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (warm.state[i] != cold.state[i]) {
      std::printf("  first state diff at byte %zu (of %zu), inside module %s\n", i, n,
                  label_before(cold.state, i));
      std::printf("  warm:");
      for (std::size_t j = i; j < std::min(i + 32, n); ++j)
        std::printf(" %02x", warm.state[j]);
      std::printf("\n  cold:");
      for (std::size_t j = i; j < std::min(i + 32, n); ++j)
        std::printf(" %02x", cold.state[j]);
      std::printf("\n");
      return;
    }
  }
  std::printf("  state bytes identical; header-only divergence\n");
}

int run(SchemeKind k, double t_us, double step_us, double end_us) {
  const WorldSpec ws = fuzz_world_spec(scenario(k), FuzzOptions{});
  const Time T = microseconds(t_us);
  std::string err;

  // Reference: an uninterrupted run_until_done with no run_to slicing.
  WorldDigest pure;
  {
    SimWorld p(ws);
    p.run_until_done();
    pure = p.digest();
    std::printf("pure cold run: digest %016" PRIx64 " ev %" PRIu64 "\n", pure.value,
                pure.events);
  }

  SimWorld a(ws);
  a.run_to(T);
  SnapshotImage img;
  if (!a.save(img, &err)) {
    std::printf("save at T failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("snapshot at %.1fus: %zu state bytes, %" PRIu64 " events\n", t_us,
              img.state.size(), a.events_processed());

  SimWorld warm(ws);
  if (!warm.restore(img, false, &err)) {
    std::printf("restore failed: %s\n", err.c_str());
    return 1;
  }
  SimWorld cold(ws);

  // Immediately compare the restored world against the saved world: a
  // re-save must be byte-identical before we even run.
  SnapshotImage resaved;
  if (!warm.save(resaved, &err)) {
    std::printf("re-save failed: %s\n", err.c_str());
    return 1;
  }
  if (!(resaved == img)) {
    std::printf("re-save differs from image BEFORE running:\n");
    diff_images(resaved, img);
    return 1;
  }
  std::printf("re-save at T byte-identical\n");

  for (double t2 = t_us + step_us; t2 <= end_us; t2 += step_us) {
    const Time T2 = microseconds(t2);
    warm.run_to(T2);
    cold.run_to(T2);
    SnapshotImage iw, ic;
    if (!warm.save(iw, &err) || !cold.save(ic, &err)) {
      std::printf("save at %.1fus failed: %s\n", t2, err.c_str());
      return 1;
    }
    if (iw == ic && warm.events_processed() == cold.events_processed()) continue;
    std::printf("DIVERGED by %.1fus: warm %" PRIu64 " events, cold %" PRIu64 "\n", t2,
                warm.events_processed(), cold.events_processed());
    for (int s = 0; s < (int)iw.clocks.size() && s < (int)ic.clocks.size(); ++s) {
      std::printf("  shard %d: warm now=%" PRId64 " ev=%" PRIu64 " cur=(%" PRId64
                  ",%" PRIu64 ")  cold now=%" PRId64 " ev=%" PRIu64 " cur=(%" PRId64
                  ",%" PRIu64 ")\n",
                  s, iw.clocks[s].now, iw.clocks[s].events, iw.clocks[s].cur_time,
                  iw.clocks[s].cur_seq, ic.clocks[s].now, ic.clocks[s].events,
                  ic.clocks[s].cur_time, ic.clocks[s].cur_seq);
    }
    std::printf("  next_seq: warm %" PRIu64 " cold %" PRIu64 "\n", iw.next_seq,
                ic.next_seq);
    diff_images(iw, ic);
    return 2;
  }
  std::printf("no divergence through %.1fus (warm %" PRIu64 " events, cold %" PRIu64
              ")\n",
              end_us, warm.events_processed(), cold.events_processed());

  // Finish both exactly the way run_fuzz_scenario does and compare.
  warm.run_until_done();
  cold.run_until_done();
  const WorldDigest wd = warm.digest();
  const WorldDigest cd = cold.digest();
  std::printf("run_until_done: warm digest %016" PRIx64 " ev %" PRIu64
              ", cold digest %016" PRIx64 " ev %" PRIu64 " -> %s\n",
              wd.value, wd.events, cd.value, cd.events,
              wd == cd ? "MATCH" : "MISMATCH");
  if (wd == cd) return 0;
  SnapshotImage iw, ic;
  if (warm.save(iw, &err) && cold.save(ic, &err)) diff_images(iw, ic);
  return 2;
}

}  // namespace
}  // namespace dcp

int main(int argc, char** argv) {
  dcp::SchemeKind k = dcp::SchemeKind::kDcp;
  if (argc > 1) {
    if (std::strncmp(argv[1], "seed:", 5) == 0) {
      dcp::g_seed = atoll(argv[1] + 5);
    } else {
      auto parsed = dcp::scheme_from_name(argv[1]);
      if (!parsed) {
        std::fprintf(stderr, "unknown scheme %s\n", argv[1]);
        return 1;
      }
      k = *parsed;
    }
  }
  const double t = argc > 2 ? atof(argv[2]) : 15.0;
  const double step = argc > 3 ? atof(argv[3]) : 5.0;
  const double end = argc > 4 ? atof(argv[4]) : 400.0;
  dcp::g_faulted = argc > 5 && std::string(argv[5]) == "faulted";
  return dcp::run(k, t, step, end);
}
